"""Command-line interface.

Three subcommands cover the common workflows::

    python -m repro run --profile quick --range 55 --speed 2 --gossip
    python -m repro figure fig2 --scale quick --seeds 2
    python -m repro list-figures

``run`` executes a single scenario and prints its delivery summary;
``figure`` regenerates one of the paper's figures (MAODV vs MAODV + AG
series); ``list-figures`` shows which figures are available.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.figures import all_figures
from repro.experiments.runner import run_experiment
from repro.metrics.reporting import format_rows
from repro.workload.scenario import Scenario, ScenarioConfig


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anonymous Gossip (ICDCS 2001) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a single scenario")
    run_parser.add_argument("--profile", choices=("quick", "paper"), default="quick")
    run_parser.add_argument("--nodes", type=int, default=None, help="number of nodes")
    run_parser.add_argument("--members", type=int, default=None, help="number of group members")
    run_parser.add_argument("--range", type=float, default=None, dest="range_m",
                            help="transmission range in metres")
    run_parser.add_argument("--speed", type=float, default=None,
                            help="maximum node speed in m/s")
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--protocol", choices=("maodv", "flooding", "odmrp"), default="maodv")
    gossip_group = run_parser.add_mutually_exclusive_group()
    gossip_group.add_argument("--gossip", dest="gossip", action="store_true", default=True,
                              help="enable Anonymous Gossip (default)")
    gossip_group.add_argument("--no-gossip", dest="gossip", action="store_false",
                              help="disable Anonymous Gossip")

    figure_parser = subparsers.add_parser("figure", help="reproduce one paper figure")
    figure_parser.add_argument("figure", choices=sorted(all_figures()))
    figure_parser.add_argument("--scale", choices=("quick", "paper"), default="quick")
    figure_parser.add_argument("--seeds", type=int, default=None)
    figure_parser.add_argument("--points", type=float, nargs="*", default=None,
                               help="subset of x values to run")
    figure_parser.add_argument(
        "--variants", nargs="*", default=("maodv", "gossip"),
        help="protocol variants to compare (maodv, gossip, flooding, odmrp, "
             "odmrp-gossip, gossip-no-locality, gossip-anonymous-only, "
             "gossip-cached-only)",
    )

    subparsers.add_parser("list-figures", help="list the reproducible figures")
    return parser


def _command_run(args: argparse.Namespace) -> int:
    overrides = {"seed": args.seed, "protocol": args.protocol, "gossip_enabled": args.gossip}
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.members is not None:
        overrides["member_count"] = args.members
    if args.range_m is not None:
        overrides["transmission_range_m"] = args.range_m
    if args.speed is not None:
        overrides["max_speed_mps"] = args.speed
    if args.profile == "paper":
        config = ScenarioConfig.paper(**overrides)
    else:
        config = ScenarioConfig.quick(**overrides)

    result = Scenario(config).run()
    summary = result.summary
    label = config.protocol + (" + gossip" if config.gossip_enabled else "")
    print(format_rows(
        ["protocol", "sent", "mean", "min", "max", "std", "delivery", "goodput"],
        [[
            label,
            summary.packets_sent,
            f"{summary.mean:.1f}",
            summary.minimum,
            summary.maximum,
            f"{summary.std:.1f}",
            f"{100 * summary.delivery_ratio:.1f}%",
            f"{result.mean_goodput:.1f}%",
        ]],
    ))
    print(f"events processed: {result.events_processed}")
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    spec = all_figures()[args.figure]
    result = run_experiment(
        spec,
        scale=args.scale,
        seeds=args.seeds,
        x_values=args.points,
        variants=tuple(args.variants),
    )
    print(result.to_table())
    return 0


def _command_list_figures() -> int:
    rows = [
        [figure, spec.title, " ".join(str(x) for x in spec.x_values)]
        for figure, spec in sorted(all_figures().items())
    ]
    print(format_rows(["figure", "title", "x values"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "list-figures":
        return _command_list_figures()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

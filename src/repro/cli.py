"""Command-line interface.

Five subcommands cover the common workflows::

    python -m repro run --profile quick --range 55 --speed 2 --gossip
    python -m repro figure fig2 --scale quick --seeds 2
    python -m repro campaign fig2 --jobs 4 --out fig2.jsonl --resume
    python -m repro report telemetry.json
    python -m repro list-figures

``run`` executes a single scenario and prints its delivery summary;
``figure`` regenerates one of the paper's figures (MAODV vs MAODV + AG
series) serially and in-process; ``campaign`` runs the same sweeps through
the parallel, resumable campaign subsystem (``--jobs`` worker processes, one
JSONL record per trial in ``--out``, ``--resume`` to skip already-stored
trials); ``report`` renders the telemetry of an instrumented run (``run
--obs``/``campaign --obs``) from a snapshot JSON, a campaign store
(``--merged`` folds a whole store into one campaign-wide snapshot) or a
pytest-benchmark artifact, and ``--diff A B`` renders the delta between any
two of those; ``list-figures`` shows which figures are available.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import List, Optional, Sequence

from repro.campaign import (
    ResultStore,
    TelemetryAggregator,
    TrialRecord,
    aggregate_experiment,
    aggregate_goodput,
    run_campaign,
    trials_for_goodput,
    trials_for_spec,
)
from repro.experiments.figures import all_figures
from repro.experiments.runner import run_experiment
from repro.experiments.variants import variant_names
from repro.membership.config import ChurnConfig
from repro.metrics.reporting import format_rows
from repro.mobility.config import MOBILITY_MODELS, MobilityConfig
from repro.obs import ObsConfig
from repro.obs.report import render_report, report_json
from repro.workload.scenario import Scenario, ScenarioConfig


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anonymous Gossip (ICDCS 2001) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run a single scenario")
    run_parser.add_argument("--profile", choices=("quick", "paper"), default="quick")
    run_parser.add_argument("--nodes", type=int, default=None, help="number of nodes")
    run_parser.add_argument("--members", type=int, default=None, help="number of group members")
    run_parser.add_argument("--range", type=float, default=None, dest="range_m",
                            help="transmission range in metres")
    run_parser.add_argument("--speed", type=float, default=None,
                            help="maximum node speed in m/s")
    run_parser.add_argument("--mobility", choices=MOBILITY_MODELS,
                            default="random_waypoint",
                            help="mobility model of the fleet (default "
                                 "random_waypoint, the paper's)")
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--protocol", choices=("maodv", "flooding", "odmrp"), default="maodv")
    run_parser.add_argument("--groups", type=int, default=1,
                            help="number of concurrent multicast groups (default 1)")
    run_parser.add_argument("--churn", choices=("none", "poisson", "onoff", "flash"),
                            default="none",
                            help="dynamic-membership model (default none: static members)")
    run_parser.add_argument("--churn-rate", type=float, default=6.0,
                            help="membership events per minute: per group for "
                                 "poisson, per member for onoff (ignored by flash)")
    run_parser.add_argument("--churn-correlated", action="store_true",
                            help="onoff only: one session clock per device -- a "
                                 "session end leaves all of the node's groups")
    gossip_group = run_parser.add_mutually_exclusive_group()
    gossip_group.add_argument("--gossip", dest="gossip", action="store_true", default=True,
                              help="enable Anonymous Gossip (default)")
    gossip_group.add_argument("--no-gossip", dest="gossip", action="store_false",
                              help="disable Anonymous Gossip")
    run_parser.add_argument("--shards", type=int, default=1,
                            help="spatial regions of the region-sharded "
                                 "engine (default 1: the classic "
                                 "single-calendar engine)")
    run_parser.add_argument("--shard-mode",
                            choices=("sequential", "windowed", "process"),
                            default="sequential",
                            help="shard execution mode: sequential (exact, "
                                 "bit-identical to unsharded), windowed "
                                 "(in-process lockstep workers) or process "
                                 "(one OS process per shard; the speedup "
                                 "mode)")
    run_parser.add_argument("--shard-window", type=float, default=None,
                            metavar="SECONDS",
                            help="conservative sync window override for the "
                                 "parallel shard modes (default: derived "
                                 "from radio range / fleet speed bound)")
    run_parser.add_argument("--obs", action="store_true",
                            help="instrument the run (metrics registry, flight "
                                 "recorder, engine sampler) and print a "
                                 "telemetry report")
    run_parser.add_argument("--obs-out", default=None, metavar="PATH",
                            help="write the telemetry snapshot as JSON to PATH "
                                 "instead of printing the text report "
                                 "(implies --obs)")
    run_parser.add_argument("--obs-dump", default=None, metavar="PATH",
                            help="dump the flight-recorder ring to PATH as "
                                 "JSONL after the run (implies --obs)")

    figure_parser = subparsers.add_parser("figure", help="reproduce one paper figure")
    _add_sweep_arguments(figure_parser)

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run a figure sweep as a parallel, resumable campaign",
        description="Flatten one figure sweep into independent trials, run "
                    "them across worker processes, and aggregate the results. "
                    "With --out every completed trial is appended to a JSONL "
                    "store; with --resume trials already in the store are "
                    "skipped, so an interrupted campaign picks up where it "
                    "left off.",
    )
    _add_sweep_arguments(campaign_parser)
    campaign_parser.add_argument("--jobs", type=int, default=1,
                                 help="number of worker processes (default 1: serial)")
    campaign_parser.add_argument("--out", default=None,
                                 help="JSONL result store; one record per completed trial")
    campaign_parser.add_argument("--resume", action="store_true",
                                 help="skip trials already present in --out")
    campaign_parser.add_argument("--obs", action="store_true",
                                 help="instrument every trial; each stored "
                                      "record then carries its telemetry "
                                      "snapshot (render with `repro report`)")

    report_parser = subparsers.add_parser(
        "report",
        help="render the telemetry of an instrumented run",
        description="Render a telemetry snapshot (run --obs-out JSON), the "
                    "telemetry carried by an instrumented campaign store "
                    "(campaign --obs --out store.jsonl) or a pytest-benchmark "
                    "artifact (BENCH_*.json): metric tree, fan-out histogram, "
                    "epoch-window hit rate, phase breakdown and top-N fan-out "
                    "offenders.  --merged folds a whole store into one "
                    "campaign-wide snapshot; --diff renders the delta between "
                    "two snapshots/stores/artifacts.",
    )
    report_parser.add_argument("path", help="telemetry JSON, campaign JSONL store "
                                            "or pytest-benchmark artifact")
    report_parser.add_argument("other", nargs="?", default=None,
                               help="second snapshot/store/artifact (--diff only)")
    report_parser.add_argument("--key", default=None,
                               help="trial key to report from a campaign store "
                                    "(default: the first instrumented record); "
                                    "with --merged, a substring filter on keys")
    report_parser.add_argument("--merged", action="store_true",
                               help="fold every instrumented trial of a campaign "
                                    "store into one campaign-wide snapshot")
    report_parser.add_argument("--diff", action="store_true",
                               help="render the telemetry delta PATH -> OTHER "
                                    "instead of a single report")
    report_parser.add_argument("--top", type=int, default=10,
                               help="number of fan-out offenders shown (default 10)")
    report_parser.add_argument("--json", action="store_true", dest="as_json",
                               help="emit the report as JSON instead of text")

    subparsers.add_parser("list-figures", help="list the reproducible figures")
    return parser


def _add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("figure", choices=sorted(all_figures()))
    parser.add_argument("--scale", choices=("quick", "paper"), default="quick")
    parser.add_argument("--seeds", type=int, default=None)
    parser.add_argument("--points", type=float, nargs="*", default=None,
                        help="subset of x values to run")
    parser.add_argument(
        "--variants", nargs="*", default=None,
        help="protocol variants to compare (default: maodv gossip): "
             + ", ".join(variant_names()),
    )


def _command_run(args: argparse.Namespace) -> int:
    obs_enabled = args.obs or args.obs_out is not None or args.obs_dump is not None
    overrides = {"seed": args.seed, "protocol": args.protocol, "gossip_enabled": args.gossip}
    if obs_enabled:
        overrides["obs_config"] = ObsConfig(enabled=True)
    if args.groups != 1:
        overrides["group_count"] = args.groups
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.members is not None:
        overrides["member_count"] = args.members
    if args.range_m is not None:
        overrides["transmission_range_m"] = args.range_m
    if args.speed is not None:
        overrides["max_speed_mps"] = args.speed
    if args.mobility != "random_waypoint":
        overrides["mobility_config"] = MobilityConfig(model=args.mobility)
    if args.shards != 1:
        overrides["shards"] = args.shards
        overrides["shard_mode"] = args.shard_mode
        if args.shard_window is not None:
            overrides["shard_window_s"] = args.shard_window
    if args.profile == "paper":
        config = ScenarioConfig.paper(**overrides)
    else:
        config = ScenarioConfig.quick(**overrides)
    if args.churn != "none":
        if args.churn in ("poisson", "onoff") and args.churn_rate <= 0:
            print(f"--churn-rate must be positive for {args.churn} churn",
                  file=sys.stderr)
            return 2
        # Churn starts once the scenario's initial joins are done, so the
        # models sample real membership state.
        start_s = config.join_window_s
        if args.churn == "flash":
            # A sensible default flash crowd: a quarter of the fleet joins
            # mid-way through the source phase (the flash instant is explicit,
            # so no churn window applies).
            churn = ChurnConfig(
                model="flash",
                flash_at_s=(config.source_start_s + config.source_stop_s) / 2.0,
                flash_joiners=max(2, config.num_nodes // 4),
                min_members=2,
            )
        elif args.churn == "onoff":
            # ~churn-rate membership events per member per minute: a node in
            # symmetric on/off sessions of mean m toggles 60/m times a minute.
            session_s = 60.0 / args.churn_rate
            churn = ChurnConfig(
                model="onoff", start_s=start_s, mean_on_s=session_s,
                mean_off_s=session_s, min_members=2,
                onoff_correlated=args.churn_correlated,
            )
        else:
            churn = ChurnConfig(
                model="poisson", start_s=start_s,
                events_per_minute=args.churn_rate, min_members=2,
            )
        config = dataclasses.replace(config, churn_config=churn)

    if config.shards > 1 and config.shard_mode in ("windowed", "process"):
        # Parallel shard modes run through the shard driver (which rejects
        # churn); the sequential mode runs in-process like everything else.
        from repro.workload.scenario import run_scenario

        scenario = None
        result = run_scenario(config)
    else:
        scenario = Scenario(config)
        result = scenario.run()
    summary = result.summary
    label = config.protocol + (" + gossip" if config.gossip_enabled else "")
    print(format_rows(
        ["protocol", "sent", "mean", "min", "max", "std", "delivery", "goodput"],
        [[
            label,
            summary.packets_sent,
            f"{summary.mean:.1f}",
            summary.minimum,
            summary.maximum,
            f"{summary.std:.1f}",
            f"{100 * summary.delivery_ratio:.1f}%",
            f"{result.mean_goodput:.1f}%",
        ]],
    ))
    if len(result.group_summaries) > 1:
        # "members seen": every node that held a subscription at some point
        # during the run (grows with churn, not the configured group size).
        print(format_rows(
            ["group", "sent", "mean", "delivery", "members seen"],
            [
                [
                    group_index,
                    group_summary.packets_sent,
                    f"{group_summary.mean:.1f}",
                    f"{100 * group_summary.delivery_ratio:.1f}%",
                    len(group_summary.member_counts),
                ]
                for group_index, group_summary in sorted(result.group_summaries.items())
            ],
        ))
    if result.membership_events:
        print(f"membership events applied: {result.membership_events}")
    print(f"events processed: {result.events_processed}")
    if result.shard_stats is not None:
        stats = result.shard_stats
        shares = ", ".join(
            f"{shard}:{count}"
            for shard, count in sorted(stats["events_by_shard"].items())
        )
        line = f"shards: {stats['shards']} ({stats['mode']}), events by shard: {shares}"
        if "window_s" in stats:
            line += (
                f", sync window {stats['window_s'] * 1000:.1f} ms"
                f" x {stats['sync_rounds']} rounds,"
                f" {stats['records_exchanged']} boundary records"
            )
        print(line)
    if obs_enabled and result.telemetry is not None:
        if args.obs_dump is not None:
            if scenario is not None:
                dumped = scenario.obs.dump_recorder(args.obs_dump)
            else:
                # Parallel shard run: the per-worker rings are gone, but the
                # merged telemetry carries their interleaved events.
                events = result.telemetry.get("recorder_events") or []
                with open(args.obs_dump, "w", encoding="utf-8") as handle:
                    for event in events:
                        handle.write(json.dumps(event, separators=(",", ":")) + "\n")
                dumped = len(events)
            print(f"flight recorder: {dumped} events dumped to {args.obs_dump}")
        if args.obs_out is not None:
            with open(args.obs_out, "w", encoding="utf-8") as handle:
                json.dump(result.telemetry, handle, indent=2)
            print(f"telemetry written to {args.obs_out}")
        else:
            print()
            print(render_report(result.telemetry, title="Telemetry"))
    return 0


#: Variants compared when ``--variants`` is not given.
DEFAULT_VARIANTS = ("maodv", "gossip")


def _check_variants(variants: Sequence[str]) -> Optional[str]:
    """Error message naming the known variants, or ``None`` when all valid."""
    unknown = [variant for variant in variants if variant not in variant_names()]
    if not unknown:
        return None
    bad = ", ".join(repr(variant) for variant in unknown)
    return f"unknown variant(s) {bad}; known variants: {', '.join(variant_names())}"


def _command_figure(args: argparse.Namespace) -> int:
    variants = tuple(args.variants) if args.variants is not None else DEFAULT_VARIANTS
    error = _check_variants(variants)
    if error:
        print(error, file=sys.stderr)
        return 2
    spec = all_figures()[args.figure]
    result = run_experiment(
        spec,
        scale=args.scale,
        seeds=args.seeds,
        x_values=args.points,
        variants=variants,
    )
    print(result.to_table())
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    error = _check_variants(args.variants if args.variants is not None else DEFAULT_VARIANTS)
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.resume and not args.out:
        print("--resume requires --out (the store to resume from)", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2

    spec = all_figures()[args.figure]
    goodput_mode = spec.combinations is not None
    if goodput_mode:
        if args.points is not None or args.variants is not None:
            print(f"{args.figure} is a goodput experiment; it always runs the "
                  "gossip variant over its fixed (range, speed) combinations, "
                  "so --points/--variants do not apply", file=sys.stderr)
            return 2
        trials = trials_for_goodput(spec, scale=args.scale, seeds=args.seeds)
    else:
        variants = tuple(args.variants) if args.variants is not None else DEFAULT_VARIANTS
        trials = trials_for_spec(
            spec,
            scale=args.scale,
            seeds=args.seeds,
            x_values=args.points,
            variants=variants,
        )
    if args.obs:
        trials = [
            dataclasses.replace(
                trial,
                config=dataclasses.replace(
                    trial.config, obs_config=ObsConfig(enabled=True)
                ),
            )
            for trial in trials
        ]

    store = None
    if args.out:
        store = ResultStore(args.out)
        if store.exists() and not args.resume:
            print(f"{args.out} already exists; pass --resume to continue it "
                  "or choose a fresh --out path", file=sys.stderr)
            return 2

    started = time.time()

    def progress(done: int, total: int, record: Optional[TrialRecord]) -> None:
        elapsed = time.time() - started
        if record is None:
            if done:
                print(f"[{elapsed:7.1f}s] resume: {done}/{total} trials already stored",
                      flush=True)
            return
        print(
            f"[{elapsed:7.1f}s] [{done}/{total}] {record.campaign} "
            f"x={record.x:g} variant={record.variant} seed={record.seed} "
            f"mean={record.metrics['mean']:.1f} "
            f"ratio={record.metrics['delivery_ratio']:.3f}",
            flush=True,
        )

    aggregator = TelemetryAggregator() if args.obs else None
    records = run_campaign(trials, jobs=args.jobs, store=store,
                           progress=progress, telemetry=aggregator)

    if goodput_mode:
        goodput = aggregate_goodput(spec, records)
        rows = []
        for (range_m, speed), per_member in goodput.items():
            values = list(per_member.values())
            rows.append([
                f"{range_m:g}m @ {speed:g}m/s",
                f"{sum(values) / len(values):.2f}" if values else "n/a",
                f"{min(values):.2f}" if values else "n/a",
                f"{max(values):.2f}" if values else "n/a",
                len(values),
            ])
        print(spec.title)
        print(format_rows(["combination", "mean", "min", "max", "members"], rows))
    else:
        print(aggregate_experiment(spec, records).to_table())
    if store is not None:
        print(f"results stored in {args.out}")
    if aggregator is not None and aggregator.trials:
        print(f"telemetry merged across {aggregator.trials} instrumented trials"
              + (f"; render with `repro report {args.out} --merged`"
                 if args.out else ""))
    return 0


def _bench_to_telemetry(payload: dict) -> dict:
    """A pytest-benchmark artifact as a telemetry snapshot.

    Every benchmark contributes ``bench.<name>.mean_s`` (its timing) plus
    one counter per numeric ``extra_info`` field, so ``repro report --diff``
    can compare two ``BENCH_*`` artifacts with the same machinery that
    compares run telemetry.
    """
    metrics = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("name", "benchmark").split("[", 1)[0]
        stats = bench.get("stats") or {}
        if isinstance(stats.get("mean"), (int, float)):
            metrics[f"bench.{name}.mean_s"] = stats["mean"]
        for field, value in sorted((bench.get("extra_info") or {}).items()):
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                metrics[f"bench.{name}.{field}"] = value
    return {"metrics": metrics}


def _load_telemetry(path: str, key: Optional[str], merged: bool = False) -> tuple:
    """Resolve ``path`` to one telemetry snapshot.

    Returns ``(telemetry, title, error)``; exactly one of telemetry/error is
    set.  Accepts a snapshot JSON (``run --obs-out``), a single stored trial
    record, a pytest-benchmark artifact (``BENCH_*.json``), or a campaign
    JSONL store -- where ``--key`` selects one trial (default the first
    instrumented record) and ``merged`` folds every instrumented trial into
    one campaign-wide snapshot (``--key`` then filters by substring).
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return None, None, str(exc)
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict) and isinstance(payload.get("benchmarks"), list):
        return _bench_to_telemetry(payload), path, None
    if isinstance(payload, dict) and "telemetry" not in payload and (
        "metrics" in payload or "histograms" in payload
    ):
        return payload, path, None
    if isinstance(payload, dict) and payload.get("telemetry"):
        return payload["telemetry"], payload.get("key", path), None
    # A campaign JSONL store (or anything line-structured).
    store = ResultStore(path)
    if merged:
        from repro.campaign import merged_store_telemetry

        telemetry = merged_store_telemetry(store, key_filter=key) if text.strip() else None
        if telemetry is None:
            return None, None, (
                f"no instrumented records in {path}"
                + (f" matching {key!r}" if key is not None else "")
                + "; run with --obs"
            )
        trials = telemetry.get("merged", {}).get("trials", 0)
        return telemetry, f"{path} (merged, {trials} trials)", None
    records = store.records() if text.strip() else []
    if key is not None:
        for record in records:
            if record.key == key:
                if not record.telemetry:
                    return None, None, f"trial {key!r} carries no telemetry (run with --obs)"
                return record.telemetry, record.key, None
        return None, None, f"no trial with key {key!r} in {path}"
    for record in records:
        if record.telemetry:
            return record.telemetry, record.key, None
    return None, None, (
        f"no instrumented records in {path}; run with --obs, or pass a "
        "telemetry snapshot JSON"
    )


def _command_report(args: argparse.Namespace) -> int:
    if args.diff and args.other is None:
        print("--diff needs two inputs: repro report --diff A B", file=sys.stderr)
        return 2
    if args.other is not None and not args.diff:
        print("a second path only makes sense with --diff", file=sys.stderr)
        return 2
    telemetry, title, error = _load_telemetry(args.path, args.key, merged=args.merged)
    if error:
        print(error, file=sys.stderr)
        return 2
    if args.diff:
        from repro.obs.report import render_diff

        other, other_title, error = _load_telemetry(
            args.other, args.key, merged=args.merged
        )
        if error:
            print(error, file=sys.stderr)
            return 2
        print(render_diff(telemetry, other, title_a=title, title_b=other_title,
                          top_n=args.top))
        return 0
    if args.as_json:
        print(json.dumps(report_json(telemetry, top_n=args.top), indent=2))
    else:
        print(render_report(telemetry, top_n=args.top, title=title))
    return 0


def _command_list_figures() -> int:
    rows = [
        [figure, spec.title, " ".join(str(x) for x in spec.x_values)]
        for figure, spec in sorted(all_figures().items())
    ]
    print(format_rows(["figure", "title", "x values"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "figure":
        return _command_figure(args)
    if args.command == "campaign":
        return _command_campaign(args)
    if args.command == "report":
        return _command_report(args)
    if args.command == "list-figures":
        return _command_list_figures()
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

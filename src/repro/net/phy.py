"""The per-node radio.

The :class:`Phy` is the thin adapter between a node's MAC and the shared
:class:`~repro.net.medium.Medium`: it exposes carrier sensing, frame
transmission and delivers received frames upward.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, TYPE_CHECKING

from repro.net.medium import Medium
from repro.net.packet import Frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node


class Phy:
    """A half-duplex radio bound to one node and one medium."""

    def __init__(self, node: "Node", medium: Medium):
        self.node = node
        self.medium = medium
        self.transmitting = False
        #: A powered-down radio neither transmits nor receives; used for
        #: failure injection (node crashes) in tests and scenarios.
        self.enabled = True
        self._receive_callback: Optional[Callable[[Frame, int], None]] = None
        medium.register(self)

    @property
    def node_id(self) -> int:
        """Identifier of the owning node."""
        return self.node.node_id

    def position(self, at_time: float) -> Tuple[float, float]:
        """Position of the owning node at ``at_time``."""
        return self.node.position(at_time)

    def set_receive_callback(self, callback: Callable[[Frame, int], None]) -> None:
        """Register the function invoked for every successfully received frame."""
        self._receive_callback = callback

    def carrier_busy(self) -> bool:
        """True when the channel is sensed busy at this node."""
        return self.medium.is_busy_for(self)

    def transmit(self, frame: Frame) -> float:
        """Put ``frame`` on the air; returns its airtime in seconds.

        A powered-down radio silently swallows the frame (it still reports
        the airtime so the MAC state machine keeps functioning).
        """
        if not self.enabled:
            return self.medium.config.airtime(frame.size_bytes)
        if self.transmitting:
            raise RuntimeError(f"node {self.node_id} radio is already transmitting")
        self.transmitting = True
        return self.medium.transmit(self, frame)

    def transmission_finished(self) -> None:
        """Called by the medium when this radio's transmission ends."""
        self.transmitting = False

    def power_down(self) -> None:
        """Disable the radio (failure injection).

        The medium marks any in-flight copies heading for this radio as
        undecodable, so a dead radio stops influencing channel statistics.
        Idempotent.
        """
        if not self.enabled:
            return
        self.enabled = False
        self.medium.radio_powered_down(self)

    def power_up(self) -> None:
        """Re-enable the radio after a simulated failure.

        The radio rejoins the interference sets of in-flight transmissions
        (with corrupted copies -- it missed the heads of those frames).
        Idempotent.
        """
        if self.enabled:
            return
        self.enabled = True
        self.medium.radio_powered_up(self)

    def deliver(self, frame: Frame, sender_id: int) -> None:
        """Called by the medium when a frame arrives intact at this radio."""
        if not self.enabled:
            return
        if self._receive_callback is not None:
            self._receive_callback(frame, sender_id)

"""The per-node radio.

The :class:`Phy` is the thin adapter between a node's MAC and the shared
:class:`~repro.net.medium.Medium`: it exposes carrier sensing, frame
transmission and delivers received frames upward.

The radio is on the per-frame hot path, so it is slotted and its two upward
callbacks (:attr:`receive_callback`, :attr:`on_transmission_finished`) are
plain attributes the medium dispatches to directly -- no per-frame closures,
no intermediate method hops.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, TYPE_CHECKING

from repro.net.medium import Medium
from repro.net.packet import Frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node


class Phy:
    """A half-duplex radio bound to one node and one medium."""

    __slots__ = ("node", "node_id", "medium", "transmitting", "enabled",
                 "receive_callback", "broadcast_callback", "unicast_filter",
                 "on_transmission_finished", "_tx_frame", "_rx_ongoing",
                 "rx_busy_until", "rx_held_count", "rx_uncorrupted",
                 "rx_corrupt_seq", "shard")

    def __init__(self, node: "Node", medium: Medium):
        self.node = node
        #: Identifier of the owning node (node ids are immutable, so the
        #: lookup is flattened out of the per-frame paths).
        self.node_id: int = node.node_id
        self.medium = medium
        self.transmitting = False
        #: A powered-down radio neither transmits nor receives; used for
        #: failure injection (node crashes) in tests and scenarios.
        self.enabled = True
        #: Invoked for every successfully received frame.  Public so the
        #: medium's delivery loop can dispatch straight to the MAC without an
        #: intermediate method call per frame.
        self.receive_callback: Optional[Callable[[Frame, int], None]] = None
        #: Optional lean entry point for ordinary broadcast frames (set by
        #: the MAC).  The medium's delivery loop prefers it over
        #: :attr:`receive_callback` for broadcast traffic that is not
        #: link-layer control, skipping the per-receiver address and
        #: ACK-type checks -- the bulk of all deliveries in a dense fleet.
        self.broadcast_callback: Optional[Callable[[Frame, int], None]] = None
        #: When ``True`` (set by the MAC, which discards such frames
        #: unread), the medium counts -- but never dispatches -- intact
        #: copies of unicast frames addressed to some other node.
        self.unicast_filter = False
        #: Invoked with the frame whenever a transmission started by this
        #: radio ends.  The MAC keys its state machine off this hook instead
        #: of scheduling a twin "transmission done" event next to the
        #: medium's own end-of-flight event (they always fired back to
        #: back); the frame identifies *which* flight ended, so a stale
        #: notification (e.g. from a disabled-radio fake flight) can never
        #: be mistaken for the current one.
        self.on_transmission_finished: Optional[Callable[[Frame], None]] = None
        #: Frame currently on the air (bookkeeping for the hook above).
        self._tx_frame: Optional[Frame] = None
        #: In-flight reception records heading for this radio (object
        #: kernel); the same list object as
        #: ``Medium._active_receptions[node_id]``, hung here so the medium's
        #: per-frame loops skip the dict lookup.  Owned by the medium (set
        #: during registration); stays empty under the batch kernel, which
        #: keeps reception state in the counters below instead.  Use
        #: ``Medium.receptions_for`` for a kernel-independent view.
        self._rx_ongoing = []
        #: Latest end-of-flight instant over every copy this radio has held
        #: (maintained by the medium on attach).  Because copies are removed
        #: exactly at their end time, the channel is sensed busy iff this
        #: watermark lies in the future -- an O(1) carrier-sense test that
        #: never walks the ongoing list.  Stale (past) values are harmless.
        self.rx_busy_until = -1.0
        #: Batch-kernel per-radio reception counters, maintained by the
        #: medium.  Every hot-path corruption event (overlapping energy,
        #: this radio starting to transmit, a power-down) corrupts *all*
        #: copies the radio currently holds, so corruption state lives here
        #: instead of on per-copy records: ``rx_held_count`` copies are in
        #: flight, ``rx_uncorrupted`` of them still decodable, and
        #: ``rx_corrupt_seq`` is the corruption epoch -- bumping it is the
        #: O(1) "everything this radio is hearing is now lost" operation
        #: (each copy remembers the epoch it was attached under).
        self.rx_held_count = 0
        self.rx_uncorrupted = 0
        self.rx_corrupt_seq = 0
        #: Home shard of this radio under a region-sharded engine (see
        #: :mod:`repro.sim.shard`): the shard whose region contained the
        #: node's initial position.  Assigned by the scenario builder; stays
        #: 0 in unsharded runs.  A load-routing hint, never a correctness
        #: input -- nodes may roam outside their home region freely.
        self.shard = 0
        medium.register(self)

    def position(self, at_time: float) -> Tuple[float, float]:
        """Position of the owning node at ``at_time``."""
        return self.node.position(at_time)

    def set_receive_callback(self, callback: Callable[[Frame, int], None]) -> None:
        """Register the function invoked for every successfully received frame."""
        self.receive_callback = callback

    def carrier_busy(self) -> bool:
        """True when the channel is sensed busy at this node."""
        return self.medium.is_busy_for(self)

    def transmit(self, frame: Frame) -> float:
        """Put ``frame`` on the air; returns its airtime in seconds.

        A powered-down radio silently swallows the frame; it still reports
        the airtime and still signals :attr:`on_transmission_finished` at the
        end of it, so the MAC state machine keeps functioning.
        """
        if not self.enabled:
            duration = self.medium.config.airtime(frame.size_bytes)
            self.medium.sim.call_in(duration, self._notify_finished, (frame,))
            return duration
        if self.transmitting:
            raise RuntimeError(f"node {self.node_id} radio is already transmitting")
        self.transmitting = True
        self._tx_frame = frame
        return self.medium.transmit(self, frame)

    def transmission_finished(self) -> None:
        """Called by the medium when this radio's transmission ends."""
        self.transmitting = False
        frame = self._tx_frame
        self._tx_frame = None
        self._notify_finished(frame)

    def _notify_finished(self, frame: Frame) -> None:
        callback = self.on_transmission_finished
        if callback is not None:
            callback(frame)

    def power_down(self) -> None:
        """Disable the radio (failure injection).

        The medium marks any in-flight copies heading for this radio as
        undecodable, so a dead radio stops influencing channel statistics.
        Idempotent.
        """
        if not self.enabled:
            return
        self.enabled = False
        self.medium.radio_powered_down(self)

    def power_up(self) -> None:
        """Re-enable the radio after a simulated failure.

        The radio rejoins the interference sets of in-flight transmissions
        (with corrupted copies -- it missed the heads of those frames).
        Idempotent.
        """
        if self.enabled:
            return
        self.enabled = True
        self.medium.radio_powered_up(self)

    def deliver(self, frame: Frame, sender_id: int) -> None:
        """Deliver a frame that arrived intact at this radio.

        The medium's hot loop dispatches straight to
        :attr:`receive_callback` (it has already checked ``enabled``); this
        method is the equivalent safe entry point for tests and tools.
        """
        if not self.enabled:
            return
        if self.receive_callback is not None:
            self.receive_callback(frame, sender_id)

"""A CSMA/CA medium-access layer.

The MAC models the parts of IEEE 802.11 DCF that shape the paper's results:

* carrier sense plus random backoff before every transmission,
* binary-exponential backoff on retransmission,
* link-layer acknowledgement and retransmission for unicast frames,
* no recovery for broadcast frames (they are sent exactly once),
* a bounded transmit queue (congestion drops).

A failed unicast (retry limit exceeded) is reported to the upper layer, which
is how AODV/MAODV detect broken links in addition to missed hello beacons.

Hot path: the MAC's state machine has at most one pending timer at any time
(backoff, transmission-done or ACK-timeout -- they are mutually exclusive),
so all three share a single :class:`~repro.sim.timers.OneShotTimer` slot and
every transition re-arms it with a bound method.  Nothing on the per-frame
path allocates beyond the frame itself.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.net.addressing import BROADCAST_ADDRESS, NodeId
from repro.net.config import MacConfig
from repro.net.packet import Frame, Packet
from repro.net.phy import Phy
from repro.sim.engine import Simulator
from repro.sim.timers import OneShotTimer


@dataclass
class MacAck(Packet):
    """Link-layer acknowledgement for a unicast frame."""

    acked_uid: int = -1

    #: Link-layer control: excluded from the medium's broadcast fast path
    #: (see ``Packet.is_mac_control``).
    is_mac_control = True

    def __post_init__(self) -> None:
        self.ttl = 1


@dataclass
class MacStats:
    """Counters kept by each MAC instance."""

    enqueued: int = 0
    queue_drops: int = 0
    data_transmissions: int = 0
    broadcast_transmissions: int = 0
    ack_transmissions: int = 0
    retransmissions: int = 0
    unicast_failures: int = 0
    delivered_to_upper: int = 0
    acks_received: int = 0


class _MacState(enum.Enum):
    IDLE = "idle"
    CONTEND = "contend"
    TRANSMIT = "transmit"
    WAIT_ACK = "wait_ack"


class _OutgoingFrame:
    """One queued frame plus its retry/backoff state."""

    __slots__ = ("frame", "retries", "cw")

    def __init__(self, frame: Frame, cw: int):
        self.frame = frame
        self.retries = 0
        self.cw = cw


class CsmaMac:
    """Carrier-sense MAC with unicast ARQ.

    Parameters
    ----------
    sim, phy, config, rng:
        Simulation engine, radio, MAC parameters and the random stream used
        for backoff.
    on_receive:
        ``callback(packet, from_node_id)`` invoked for every frame addressed
        to this node (or broadcast).
    on_unicast_failure:
        ``callback(packet, next_hop)`` invoked when a unicast frame exhausts
        its retries; used by routing layers as a link-break signal.
    """

    def __init__(
        self,
        sim: Simulator,
        phy: Phy,
        config: MacConfig,
        rng,
        *,
        on_receive: Optional[Callable[[Packet, NodeId], None]] = None,
        on_unicast_failure: Optional[Callable[[Packet, NodeId], None]] = None,
    ):
        self.sim = sim
        self.phy = phy
        self.config = config
        self.rng = rng
        self.stats = MacStats()
        self.on_receive = on_receive
        self.on_unicast_failure = on_unicast_failure

        self._node_id = phy.node_id
        # Observability binding, reached through the radio's channel so the
        # MAC needs no extra wiring.  Metrics are bound once here; the
        # cached bool gates every probe site (zero cost when disabled).
        obs = phy.medium.obs
        self._obs_on = obs.enabled
        self._c_defers = obs.counter("mac.csma.defers")
        self._c_backoffs = obs.counter("mac.csma.backoffs")
        self._c_retries = obs.counter("mac.csma.retries")
        # Per-frame hot-path copies of the (immutable) config scalars.
        self._difs_s = config.difs_s
        self._slot_time_s = config.slot_time_s
        self._sifs_s = config.sifs_s
        self._ack_timeout_s = config.ack_timeout_s
        self._cw_min = config.cw_min
        self._queue_limit = config.queue_limit
        self._state = _MacState.IDLE
        self._queue: Deque[_OutgoingFrame] = deque()
        self._current: Optional[_OutgoingFrame] = None
        #: The single pending state-machine event (backoff, transmission-done
        #: or ACK-timeout; mutually exclusive by construction).
        self._pending = OneShotTimer(sim)
        # Recently received unicast frame ids, used to suppress duplicate
        # deliveries caused by lost ACKs + retransmission (802.11 does the
        # same with its retry bit and sequence-number cache).
        self._recent_unicast: Deque[tuple] = deque(maxlen=32)

        phy.set_receive_callback(self._on_phy_receive)
        # Delivery fast paths: broadcast frames skip the address/ACK checks
        # through the lean entry point, and intact unicast frames addressed
        # elsewhere (which _on_phy_receive would discard unread) are
        # filtered medium-side without a dispatch at all.
        phy.broadcast_callback = self._on_phy_broadcast
        phy.unicast_filter = True
        phy.on_transmission_finished = self._on_phy_tx_finished

    # ----------------------------------------------------------------- public
    @property
    def node_id(self) -> NodeId:
        """Identifier of the owning node."""
        return self._node_id

    @property
    def state(self) -> str:
        """Current MAC state name (for tests and debugging)."""
        return self._state.value

    @property
    def queue_length(self) -> int:
        """Number of frames waiting to be transmitted (excluding the current one)."""
        return len(self._queue)

    def send(self, packet: Packet, next_hop: int) -> bool:
        """Queue ``packet`` for transmission to ``next_hop``.

        Returns ``False`` when the frame was dropped because the transmit
        queue is full.
        """
        frame = Frame(src=self._node_id, dst=next_hop, packet=packet)
        if len(self._queue) >= self._queue_limit:
            self.stats.queue_drops += 1
            return False
        self.stats.enqueued += 1
        self._queue.append(_OutgoingFrame(frame, self._cw_min))
        if self._state is _MacState.IDLE:
            self._dequeue_next()
        return True

    # ----------------------------------------------------------- transmit path
    def _dequeue_next(self) -> None:
        if self._current is not None or not self._queue:
            return
        self._current = self._queue.popleft()
        self._start_contention()

    def _start_contention(self) -> None:
        self._state = _MacState.CONTEND
        if self._obs_on:
            self._c_backoffs.inc()
        self._pending.arm(self._backoff_delay(self._current.cw), self._attempt_transmission)

    def _backoff_delay(self, cw: int) -> float:
        slots = self.rng.randrange(cw)
        return self._difs_s + slots * self._slot_time_s

    def _attempt_transmission(self) -> None:
        if self._state is not _MacState.CONTEND or self._current is None:
            return
        if self.phy.transmitting or self.phy.carrier_busy():
            # Defer: redraw the backoff and try again when it expires.
            if self._obs_on:
                self._c_defers.inc()
                self._c_backoffs.inc()
            self._pending.arm(self._backoff_delay(self._current.cw), self._attempt_transmission)
            return
        self._state = _MacState.TRANSMIT
        frame = self._current.frame
        if frame.dst == BROADCAST_ADDRESS:
            self.stats.broadcast_transmissions += 1
        else:
            self.stats.data_transmissions += 1
        self.phy.transmit(frame)
        # No "transmission done" event: the phy signals the end of flight
        # through _on_phy_tx_finished, saving one scheduled event per frame.

    def _on_phy_tx_finished(self, frame: Frame) -> None:
        """End-of-flight hook from the radio.

        Fires, with the frame, for every transmission this radio started.
        Only the end of the *current* data frame advances the state machine:
        ACK flights (and stale disabled-radio fake flights, which can end
        out of order) carry a different frame and are ignored.
        """
        if (
            self._state is _MacState.TRANSMIT
            and self._current is not None
            and frame is self._current.frame
        ):
            self._transmission_done()

    def _transmission_done(self) -> None:
        if self._current is None:
            self._state = _MacState.IDLE
            return
        frame = self._current.frame
        if frame.dst == BROADCAST_ADDRESS:
            self._finish_current()
        else:
            self._state = _MacState.WAIT_ACK
            self._pending.arm(self._ack_timeout_s, self._ack_timeout)

    def _ack_timeout(self) -> None:
        if self._state is not _MacState.WAIT_ACK or self._current is None:
            return
        current = self._current
        if current.retries >= self.config.retry_limit:
            self.stats.unicast_failures += 1
            failed = current.frame
            self._finish_current()
            if self.on_unicast_failure is not None:
                self.on_unicast_failure(failed.packet, failed.dst)
            return
        current.retries += 1
        current.cw = min(current.cw * 2, self.config.cw_max)
        self.stats.retransmissions += 1
        if self._obs_on:
            self._c_retries.inc()
        self._start_contention()

    def _finish_current(self) -> None:
        self._current = None
        self._state = _MacState.IDLE
        self._pending.disarm()
        self._dequeue_next()

    # ------------------------------------------------------------ receive path
    def _on_phy_broadcast(self, frame: Frame, sender_id: NodeId) -> None:
        """Lean entry for ordinary broadcast frames (the dense-fleet bulk).

        The medium only routes frames here that are link-layer broadcast
        and not MAC control, so the per-receiver destination and ACK-type
        checks of :meth:`_on_phy_receive` are statically satisfied.
        """
        self.stats.delivered_to_upper += 1
        if self.on_receive is not None:
            self.on_receive(frame.packet, sender_id)

    def _on_phy_receive(self, frame: Frame, sender_id: NodeId) -> None:
        dst = frame.dst
        if dst != self._node_id and dst != BROADCAST_ADDRESS:
            return
        packet = frame.packet
        if isinstance(packet, MacAck):
            self._handle_ack(packet, sender_id)
            return
        if dst != BROADCAST_ADDRESS:
            self._send_ack(packet, sender_id)
            key = (sender_id, packet.uid)
            if key in self._recent_unicast:
                # Retransmission of a frame whose ACK was lost: acknowledge
                # again but do not deliver a duplicate upward.
                return
            self._recent_unicast.append(key)
        self.stats.delivered_to_upper += 1
        if self.on_receive is not None:
            self.on_receive(packet, sender_id)

    def _handle_ack(self, ack: MacAck, sender_id: NodeId) -> None:
        self.stats.acks_received += 1
        if (
            self._state is _MacState.WAIT_ACK
            and self._current is not None
            and ack.acked_uid == self._current.frame.packet.uid
            and sender_id == self._current.frame.dst
        ):
            self._finish_current()

    def _send_ack(self, packet: Packet, sender_id: NodeId) -> None:
        ack = MacAck(
            origin=self._node_id,
            destination=sender_id,
            size_bytes=self.config.ack_size_bytes,
            acked_uid=packet.uid,
        )
        self.sim.call_in(self._sifs_s, self._transmit_ack, (ack, sender_id))

    def _transmit_ack(self, ack: MacAck, sender_id: NodeId) -> None:
        if self.phy.transmitting:
            # Half-duplex: we started another transmission in the meantime,
            # the data sender will retransmit.
            return
        frame = Frame(src=self._node_id, dst=sender_id, packet=ack)
        self.stats.ack_transmissions += 1
        self.phy.transmit(frame)

"""Addressing conventions.

Nodes are identified by small non-negative integers (``NodeId``).  Multicast
groups live in a disjoint address space starting at
:data:`MULTICAST_BASE` so a destination address can always be classified as
unicast, multicast or broadcast without extra context (mirroring IPv4 class-D
addressing in the paper's stack).
"""

from __future__ import annotations

NodeId = int
GroupAddress = int

#: Link-layer and network-layer broadcast address.
BROADCAST_ADDRESS: int = -1

#: First address of the multicast group range.
MULTICAST_BASE: int = 1_000_000


def make_group_address(index: int) -> GroupAddress:
    """Return the group address for multicast group number ``index`` (0-based)."""
    if index < 0:
        raise ValueError(f"group index must be non-negative, got {index}")
    return MULTICAST_BASE + index


def is_multicast(address: int) -> bool:
    """True when ``address`` designates a multicast group."""
    return address >= MULTICAST_BASE


def is_broadcast(address: int) -> bool:
    """True when ``address`` is the broadcast address."""
    return address == BROADCAST_ADDRESS


def is_unicast(address: int) -> bool:
    """True when ``address`` designates a single node."""
    return 0 <= address < MULTICAST_BASE

"""Spatial indexing for the wireless medium.

The medium's hot path asks one question thousands of times per simulated
second: *which radios lie within a given range of this point, right now?*
The naive answer interpolates every registered node's mobility model and
computes every distance -- O(N) per transmission, O(N^2) per beacon round --
which dominates the wall-clock time of paper-scale sweeps.

This module answers the same question in O(k) for the k nodes near the query
point, without changing a single simulation outcome:

:class:`PositionMemo`
    A per-instant position cache over the analytic mobility models.  Each
    node's position is interpolated at most once per simulation instant.
    The mobility motion-service contract stretches entries across instants:

    * :meth:`~repro.mobility.base.MobilityModel.position_hold` lets pausing
      models (random waypoint between legs, static placement) declare how
      long a position provably stays constant,
    * :meth:`~repro.mobility.base.MobilityModel.speed_bound_mps` turns a
      stale entry into a conservative distance *interval*: a node cached
      ``d`` metres from a point at most ``drift`` metres ago is certainly
      within range ``r`` when ``d + drift <= r`` and certainly outside when
      ``d - drift > r``.  Only the rare boundary-ambiguous pairs fall back to
      exact interpolation, so classification is exact while interpolation is
      amortised away, and
    * :meth:`~repro.mobility.base.MobilityModel.motion_sample` adds the
      **displacement epoch** -- a counter that advances only once the node
      has moved more than a configured band from the epoch's anchor
      position.  The memo subscribes every tracked model to the band and
      records the epoch in its entries, so consumers can key caches by
      ``(node, epoch)`` and keep them exactly valid while the node stays
      inside the band.

    Scripted teleports (``StaticMobility.move_to``) invalidate entries
    through the mobility position listeners (and advance the epoch), so
    cached bounds never lie.

:class:`UniformGridIndex`
    A uniform grid with cell size of the order of the carrier-sense range,
    built lazily from memoised positions and kept until accumulated drift
    (``speed bound x age``) exceeds a slack budget.  Queries inflate their
    radius by the worst-case staleness, so the returned candidate set is a
    guaranteed superset of the true in-range set; the medium then classifies
    each candidate exactly through the memo.

    On top of the plain candidate windows, the grid serves the medium
    **per-sender pre-classified interference windows** through
    :meth:`~UniformGridIndex.transmission_window`: bound to the sender's
    exact position while it provably holds still, and to its
    displacement-epoch *anchor* while it moves -- valid for every
    transmission the sender makes inside the band, which extends the
    paused-sender fast path to slow movers.  Window members whose verdict
    depends on the instant carry drift *deadlines*, so even they are
    typically resolved once per window rather than once per transmission.
    Classification stays exact for any band width.

:class:`LinearScanIndex`
    The O(N) reference implementation with the exact semantics of the
    original medium: every registered radio is a candidate and every position
    is interpolated on demand, uncached.  Selectable via
    ``RadioConfig(medium_index="naive")`` so grid/naive equivalence stays
    testable (see ``tests/properties/test_medium_equivalence.py``).

Candidates are always reported in registration order, which is the order the
naive implementation iterates radios in -- reception lists, delivery
callbacks and therefore every downstream statistic are bit-identical between
the two implementations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.phy import Phy

Position = Tuple[float, float]

#: Safety margin added to drift bounds so a node moving at exactly its speed
#: bound can never be misclassified by floating-point rounding of the bound
#: arithmetic; pairs this close to a range boundary re-interpolate instead.
_DRIFT_EPSILON_M = 1e-9


def within_range(distance_sq: float, radius: float, drift: float) -> Optional[bool]:
    """Classify a cached squared distance against ``radius`` under ``drift``.

    ``distance_sq`` was computed from a position that may be up to ``drift``
    metres away from the node's true position.  Returns ``True`` / ``False``
    when the classification is certain either way and ``None`` when the pair
    lies within ``drift`` of the boundary and needs an exact position.
    """
    outer = radius + drift
    if distance_sq > outer * outer:
        return False
    inner = radius - drift
    if inner >= 0.0 and distance_sq <= inner * inner:
        return True
    return None


class PositionMemo:
    """Bounded-drift position cache keyed by node id.

    ``exact`` returns the true position at ``now`` (interpolating at most
    once per node per instant); ``bounded`` returns a possibly stale cached
    position together with a conservative bound on how far the node may have
    drifted from it, refreshing the entry whenever the bound exceeds
    ``refresh_cap_m``.
    """

    def __init__(self, refresh_cap_m: float = 0.0, epoch_band_m: Optional[float] = None):
        self.refresh_cap_m = refresh_cap_m
        #: Displacement band configured on tracked mobility models; ``None``
        #: disables epoch tracking entirely (no model is reconfigured).
        self.epoch_band_m = epoch_band_m
        #: node_id -> (position, computed_at, hold_until, speed bound,
        #: displacement epoch); the static per-node speed bound rides inside
        #: the entry so the hot classification loops resolve one dict lookup
        #: instead of two.  The epoch is -1 for models without the
        #: motion-sample contract.
        self._entries: Dict[int, Tuple[Position, float, float, Optional[float], int]] = {}
        self._holds: Dict[int, object] = {}
        self._rates: Dict[int, Optional[float]] = {}
        self._phys: Dict[int, "Phy"] = {}
        #: node_id -> bound motion_sample method (None without the contract).
        self._samplers: Dict[int, object] = {}
        #: node_id -> mobility model, for reading the epoch anchor.
        self._models: Dict[int, object] = {}

    def track(self, phy: "Phy") -> None:
        """Start caching positions for ``phy``'s node.

        Models exposing the motion-sample contract are subscribed to the
        memo's displacement band, so their epochs become meaningful to every
        consumer of this memo.
        """
        node_id = phy.node_id
        mobility = getattr(phy.node, "mobility", None)
        self._phys[node_id] = phy
        self._holds[node_id] = getattr(mobility, "position_hold", None)
        self._rates[node_id] = getattr(mobility, "speed_bound_mps", None)
        sampler = getattr(mobility, "motion_sample", None)
        set_band = getattr(mobility, "set_epoch_band", None)
        if sampler is not None and set_band is not None and self.epoch_band_m is not None:
            set_band(self.epoch_band_m)
            self._samplers[node_id] = sampler
            self._models[node_id] = mobility
        else:
            self._samplers[node_id] = None

    def rate_of(self, node_id: int) -> Optional[float]:
        """The node's speed bound (``None`` when unknown)."""
        return self._rates[node_id]

    def exact(self, node_id: int, now: float) -> Position:
        """The true position at ``now``; interpolates at most once per instant."""
        entry = self._entries.get(node_id)
        if entry is not None:
            position, computed_at, hold_until, _, _ = entry
            if now == computed_at or computed_at <= now < hold_until:
                return position
        sampler = self._samplers[node_id]
        if sampler is not None:
            position, hold_until, _, epoch = sampler(now)
        else:
            epoch = -1
            hold = self._holds[node_id]
            if hold is not None:
                position, hold_until = hold(now)
            else:
                position, hold_until = self._phys[node_id].position(now), now
        self._entries[node_id] = (position, now, hold_until, self._rates[node_id], epoch)
        return position

    def epoch_of(self, node_id: int, now: float) -> Tuple[Optional[int], Optional[Position]]:
        """The node's displacement epoch and anchor, sampled at ``now``.

        Refreshes the memo entry when it is not already valid at ``now``
        (the epoch recorded in a holding entry stays correct for the whole
        hold: a held position cannot accumulate displacement, and teleports
        invalidate the entry through the position listeners).  Returns
        ``(None, None)`` for models without the motion-sample contract.
        """
        if self._samplers.get(node_id) is None:
            return None, None
        entry = self._entries.get(node_id)
        if entry is None or not (now == entry[1] or entry[1] <= now < entry[2]):
            self.exact(node_id, now)
            entry = self._entries[node_id]
        # Direct attribute read (not the epoch_anchor property): this runs
        # once per transmission, and the underlying slot is kept in sync by
        # MobilityModel.motion_sample.
        return entry[4], self._models[node_id]._epoch_anchor

    def bounded(self, node_id: int, now: float) -> Tuple[Position, float]:
        """A cached position plus a conservative drift bound in metres.

        A zero drift means the returned position is exact at ``now``.
        """
        entry = self._entries.get(node_id)
        if entry is None:
            return self.exact(node_id, now), 0.0
        position, computed_at, hold_until, rate, _ = entry
        if now == computed_at or computed_at <= now < hold_until:
            return position, 0.0
        if rate is None or now < computed_at:
            return self.exact(node_id, now), 0.0
        drift = rate * (now - hold_until)
        if drift > self.refresh_cap_m:
            return self.exact(node_id, now), 0.0
        if drift > 0.0:
            drift += _DRIFT_EPSILON_M
        return position, drift

    def invalidate(self, node_id: Optional[int] = None) -> None:
        """Drop one node's entry (or all of them after a bulk change)."""
        if node_id is None:
            self._entries.clear()
        else:
            self._entries.pop(node_id, None)


class UniformGridIndex:
    """Uniform-grid candidate index over memoised positions.

    The grid buckets nodes by ``cell_m``-sized cells from positions that are
    at most ``slack_m`` metres stale; it is rebuilt once accumulated motion
    (the fleet speed bound times the grid's age) exceeds ``slack_m`` -- or on
    every new timestamp when any node's speed is unbounded.  Queries inflate
    their radius by both staleness terms, so candidate sets are supersets of
    the truth and exact classification is delegated to the memo.
    """

    def __init__(self, cell_m: float, slack_m: float, band_m: Optional[float] = None,
                 membership=None):
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        if slack_m < 0:
            raise ValueError("slack_m must be non-negative")
        if band_m is not None and band_m < 0:
            raise ValueError("band_m must be non-negative")
        self.cell_m = cell_m
        self.slack_m = slack_m
        #: Optional membership predicate: radios it rejects are never
        #: tracked or bucketed (the sharded engine's halo filter -- a
        #: parallel worker indexes only its owned + halo radios, so grid
        #: size scales with the region, not the fleet).  ``None`` admits
        #: every radio.
        self.membership = membership
        #: Displacement-epoch band for per-sender windows (defaults to the
        #: slack budget): a moving sender keeps its pre-classified window
        #: while it stays within this distance of the window's anchor.
        self.band_m = slack_m if band_m is None else band_m
        self._inv_cell = 1.0 / cell_m
        self.memo = PositionMemo(refresh_cap_m=slack_m, epoch_band_m=self.band_m)
        #: (registration order, node id, phy) triples.
        self._members: List[Tuple[int, int, "Phy"]] = []
        self._cells: Dict[Tuple[int, int], List[Tuple[int, int, "Phy"]]] = {}
        #: (origin cell, radius) -> concatenated buckets of the cells a query
        #: from anywhere in that origin cell can reach; valid until rebuild.
        self._window_cache: Dict[Tuple[int, int, float], List[Tuple[int, int, "Phy"]]] = {}
        #: (origin cell, cs range, rx range) -> window pre-classified per
        #: member for the whole grid epoch (see :meth:`_iwindow`).
        self._iwindow_cache: Dict[tuple, List[tuple]] = {}
        #: (sender id, exact position, cs, rx) -> window pre-classified
        #: against that exact point (much tighter than the cell bounds; built
        #: only for senders sitting still, see :meth:`interferers`).
        self._sender_cache: Dict[tuple, List[tuple]] = {}
        #: (sender id, displacement epoch, cs, rx) -> window pre-classified
        #: against the epoch's anchor position with the band folded into the
        #: error budget; valid for every transmission the sender makes while
        #: staying inside the band (see :meth:`interferers`).
        self._epoch_cache: Dict[tuple, List[tuple]] = {}
        #: node_id -> (memo position used to bucket it at the last rebuild,
        #: that position's staleness bound in metres at build time).
        self._build_pos: Dict[int, Tuple[Position, float]] = {}
        #: Reused output of :meth:`transmission_window` when boundary
        #: members need patching (consumed before the next transmission
        #: starts, so one buffer keeps the hot path allocation-free).
        self._patched: List[tuple] = []
        self._built_at: Optional[float] = None
        self._dirty = True
        #: Max speed bound over every tracked node; ``None`` once any node's
        #: bound is unknown (degrades to rebuild-per-timestamp).
        self._speed_bound: Optional[float] = 0.0
        #: Diagnostic counters behind the canonical ``spatial.index.*``
        #: telemetry names: full grid rebuilds, pre-classified windows served
        #: from cache, and windows built fresh.  Plain ints on the hot path;
        #: the obs layer reads them once per snapshot.
        self.grid_rebuilds = 0
        self.window_hits = 0
        self.window_builds = 0
        self.window_patch_hits = 0

    # --------------------------------------------------------------- members
    def add(self, phy: "Phy") -> None:
        """Track a radio; the grid is rebuilt lazily on the next query.

        Radios rejected by the membership predicate are ignored entirely:
        they are never memoised, bucketed or enumerated, so every query
        (and every rebuild) pays only for admitted members.  Registration
        order among admitted members is preserved -- the bit-identity
        contract of the window enumeration.
        """
        if self.membership is not None and not self.membership(phy):
            return
        self.memo.track(phy)
        self._members.append((len(self._members), phy.node_id, phy))
        rate = self.memo.rate_of(phy.node_id)
        if rate is None or self._speed_bound is None:
            self._speed_bound = None
        else:
            self._speed_bound = max(self._speed_bound, rate)
        self._dirty = True

    def invalidate(self, node_id: Optional[int] = None) -> None:
        """Invalidate cached positions (and the grid) after a teleport."""
        self.memo.invalidate(node_id)
        self._dirty = True

    def members(self) -> List[Tuple[int, int, "Phy"]]:
        """Every registered radio as ``(order, node_id, phy)`` triples."""
        return self._members

    # --------------------------------------------------------------- queries
    def exact(self, phy: "Phy", now: float) -> Position:
        return self.memo.exact(phy.node_id, now)

    def bounded(self, phy: "Phy", now: float) -> Tuple[Position, float]:
        return self.memo.bounded(phy.node_id, now)

    def _grid_age_drift(self, now: float) -> Optional[float]:
        """Worst-case motion since the grid was built; ``None`` = rebuild."""
        if self._dirty or self._built_at is None:
            return None
        if now == self._built_at:
            return 0.0
        bound = self._speed_bound
        if bound is None:
            return None  # unknown speeds: the grid is only valid at build time
        drift = bound * (now - self._built_at)
        if drift > self.slack_m:
            return None
        return drift

    def _cell_key(self, x: float, y: float) -> Tuple[int, int]:
        """Grid cell containing ``(x, y)`` (overridden by the torus variant)."""
        inv_cell = self._inv_cell
        return (math.floor(x * inv_cell), math.floor(y * inv_cell))

    def _rebuild(self, now: float) -> None:
        cells: Dict[Tuple[int, int], List[Tuple[int, int, "Phy"]]] = {}
        build_pos: Dict[int, Tuple[Position, float]] = {}
        memo = self.memo
        cell_key = self._cell_key
        for member in self._members:
            position, drift = memo.bounded(member[1], now)
            build_pos[member[1]] = (position, drift)
            key = cell_key(position[0], position[1])
            bucket = cells.get(key)
            if bucket is None:
                cells[key] = [member]
            else:
                bucket.append(member)
        self._cells = cells
        self._build_pos = build_pos
        self._window_cache.clear()
        self._iwindow_cache.clear()
        self._sender_cache.clear()
        self._epoch_cache.clear()
        self._built_at = now
        self._dirty = False
        self.grid_rebuilds += 1

    @property
    def rebuilds(self) -> int:
        """Deprecated alias of :attr:`grid_rebuilds` (one-release shim)."""
        return self.grid_rebuilds

    def _ensure_current(self, now: float) -> None:
        """Rebuild the grid if its accumulated drift exceeds the slack."""
        if self._grid_age_drift(now) is None:
            self._rebuild(now)

    def _window(self, cx: int, cy: int, radius: float) -> List[Tuple[int, int, "Phy"]]:
        """Members reachable within ``radius`` from anywhere in cell (cx, cy).

        The reach is inflated by the full staleness budget (cached positions
        up to ``refresh_cap`` stale at build plus up to ``slack_m`` of fleet
        motion before the next rebuild), so the cached window stays a valid
        superset for any query instant of the current grid epoch.  Cached per
        (cell, radius) until the next rebuild -- senders in the same cell
        share one bucket concatenation.
        """
        key = (cx, cy, radius)
        cached = self._window_cache.get(key)
        if cached is not None:
            return cached
        cell_m = self.cell_m
        inv_cell = self._inv_cell
        reach = radius + self.memo.refresh_cap_m + self.slack_m
        x0 = cx * cell_m
        x1 = x0 + cell_m
        y0 = cy * cell_m
        y1 = y0 + cell_m
        gx_lo = math.floor((x0 - reach) * inv_cell)
        gx_hi = math.floor((x1 + reach) * inv_cell)
        gy_lo = math.floor((y0 - reach) * inv_cell)
        gy_hi = math.floor((y1 + reach) * inv_cell)
        reach_sq = reach * reach
        cells = self._cells
        out: List[Tuple[int, int, "Phy"]] = []
        for gx in range(gx_lo, gx_hi + 1):
            gx0 = gx * cell_m
            if gx0 > x1:
                dx = gx0 - x1
            elif gx0 + cell_m < x0:
                dx = x0 - gx0 - cell_m
            else:
                dx = 0.0
            dx_sq = dx * dx
            for gy in range(gy_lo, gy_hi + 1):
                bucket = cells.get((gx, gy))
                if not bucket:
                    continue
                gy0 = gy * cell_m
                if gy0 > y1:
                    dy = gy0 - y1
                elif gy0 + cell_m < y0:
                    dy = y0 - gy0 - cell_m
                else:
                    dy = 0.0
                # Skip cells entirely beyond reach of the origin cell.
                if dx_sq + dy * dy > reach_sq:
                    continue
                out.extend(bucket)
        # Sort once here so every query that filters the window inherits
        # registration order without re-sorting.
        out.sort()
        self._window_cache[key] = out
        return out

    def _point_window(self, sender: "Phy", px: float, py: float,
                      cs_range: float, rx_range: float, extra_m: float) -> List[tuple]:
        """An interference window pre-classified against a point anchor.

        ``extra_m`` is the sender's positional uncertainty around
        ``(px, py)``: 0 for a paused sender classified against its exact
        position (the boundary band then shrinks from cell-diagonal width to
        the error budget), the displacement band for a moving sender
        classified against its epoch anchor (the verdicts then hold for any
        origin inside the band at any instant of the grid epoch).  Member
        budgets add their build staleness and the fleet slack, the
        enumeration reach is inflated by ``extra_m`` so the window stays a
        superset for off-anchor origins, and the sender itself is excluded
        while building.
        """
        slack = self.slack_m + extra_m + _DRIFT_EPSILON_M
        build_pos = self._build_pos
        hypot = math.hypot
        out: List[tuple] = []
        for member in self._window(
            math.floor(px * self._inv_cell), math.floor(py * self._inv_cell),
            cs_range + extra_m,
        ):
            phy = member[2]
            if phy is sender:
                continue
            (bx, by), build_drift = build_pos[member[1]]
            budget = build_drift + slack
            d = hypot(bx - px, by - py)
            if d - budget > cs_range:
                continue
            if d + budget <= rx_range:
                certain = True
            elif rx_range < cs_range and d - budget > rx_range and d + budget <= cs_range:
                certain = False
            else:
                certain = None
            out.append((member[0], member[1], phy, certain))
        return out

    def candidates(
        self, origin: Position, radius: float, now: float
    ) -> List[Tuple[int, int, "Phy"]]:
        """Every radio possibly within ``radius`` of ``origin`` at ``now``.

        Returned in registration order as ``(order, node_id, phy)`` triples;
        a guaranteed superset of the true in-range set (callers classify each
        candidate exactly).
        """
        self._ensure_current(now)
        inv_cell = self._inv_cell
        return self._window(
            math.floor(origin[0] * inv_cell), math.floor(origin[1] * inv_cell), radius
        )

    def _iwindow(self, cx: int, cy: int, cs_range: float, rx_range: float) -> List[tuple]:
        """The interference window pre-classified per member for this epoch.

        For every member of the plain window the build-time position is
        compared against the origin *cell rectangle* under the full epoch
        error budget (position staleness at build plus fleet motion before
        the next rebuild).  That yields, per member, a verdict valid for any
        transmission from this cell at any instant of the grid epoch:

        * provably beyond carrier-sense reach -> dropped from the window,
        * provably within reception range -> ``certain = True``,
        * provably sensed but out of reception range -> ``certain = False``
          (only possible when the carrier-sense range exceeds the reception
          range),
        * anything else -> ``certain = None`` (classified per query).

        Returned as ``(order, node_id, phy, certain)`` tuples in registration
        order and cached until the next rebuild, so the per-transmission loop
        does distance work only for the boundary band.
        """
        key = (cx, cy, cs_range, rx_range)
        cached = self._iwindow_cache.get(key)
        if cached is not None:
            return cached
        # Per-member error budget: the member's actual staleness at build
        # (often zero, and never above the memo's refresh cap) plus the
        # fleet-motion slack before the next rebuild.
        slack = self.slack_m + _DRIFT_EPSILON_M
        cell_m = self.cell_m
        x0 = cx * cell_m
        x1 = x0 + cell_m
        y0 = cy * cell_m
        y1 = y0 + cell_m
        build_pos = self._build_pos
        hypot = math.hypot
        out: List[tuple] = []
        for order, node_id, phy in self._window(cx, cy, cs_range):
            (px, py), build_drift = build_pos[node_id]
            budget = build_drift + slack
            dx_out = x0 - px if px < x0 else (px - x1 if px > x1 else 0.0)
            dy_out = y0 - py if py < y0 else (py - y1 if py > y1 else 0.0)
            dmin = hypot(dx_out, dy_out)
            if dmin - budget > cs_range:
                continue
            dx_far = px - x0 if px - x0 > x1 - px else x1 - px
            dy_far = py - y0 if py - y0 > y1 - py else y1 - py
            dmax = hypot(dx_far, dy_far)
            if dmax + budget <= rx_range:
                certain = True
            elif rx_range < cs_range and dmin - budget > rx_range and dmax + budget <= cs_range:
                certain = False
            else:
                certain = None
            out.append((order, node_id, phy, certain))
        self._iwindow_cache[key] = out
        return out

    @staticmethod
    def _split_window(window: List[tuple], ax: Optional[float], ay: Optional[float],
                      band: float) -> list:
        """Split a pre-classified window for the template-copy hot path.

        Returns a mutable split record ``[template, boundary, ax, ay, band,
        patched, patched_until]``.  ``boundary`` holds one mutable
        ``[index, member, deadline, resolved]`` patch per member whose
        verdict is ``None``: ``resolved`` caches the member's last
        anchor-relative verdict and ``deadline`` is the instant until which
        that verdict provably holds (the member cannot have drifted across
        the relevant range boundary before then).  ``(ax, ay)`` is the
        anchor the window was classified against and ``band`` the sender's
        positional uncertainty around it; ``ax is None`` marks windows with
        no point anchor (the per-cell fallback), whose boundary members are
        classified per call.  ``patched`` is the split's own fully patched
        output buffer and ``patched_until`` the instant it stays valid to --
        the minimum of the boundary deadlines when it was last filled -- so
        a query inside that horizon returns it without copying the template
        or walking the patches at all.
        """
        boundary = [[i, m, 0.0, None] for i, m in enumerate(window) if m[3] is None]
        return [window, boundary, ax, ay, band, None, -math.inf]

    def transmission_window(
        self, sender: "Phy", origin: Position, cs_range: float, rx_range: float,
        now: float,
    ) -> List[tuple]:
        """The fully resolved interference window of one transmission.

        Returns ``(order, node_id, phy, in_reception_range)`` tuples in
        registration order; ``in_reception_range`` is ``None`` for members
        that turned out beyond carrier-sense reach (callers skip them -- a
        patched template cannot cheaply drop entries).  The window never
        contains the sender but may contain disabled radios; callers filter
        those.

        A sender that is provably sitting still (its memo entry holds past
        ``now``) is served from a window pre-classified against its *exact*
        position: far tighter than the cell-rectangle bounds, and stable
        across the many transmissions a paused node makes from one spot.  A
        *moving* sender is served from a window pre-classified against its
        displacement-epoch anchor instead: looser by the band width, but
        stable until the sender has moved more than the band -- so slow
        movers reuse one pre-classified window across many transmissions
        too.  The window's boundary members are resolved against the anchor
        on demand and the verdict is cached with a drift *deadline* (the
        member cannot cross the relevant boundary before it), so even they
        are typically classified once per window, not once per call; only
        members hugging a range boundary fall back to an exact per-call
        test against the actual origin.
        """
        self._ensure_current(now)
        ox, oy = origin
        memo = self.memo
        entries = memo._entries
        sender_id = sender.node_id
        sender_entry = entries.get(sender_id)
        split = None
        if sender_entry is not None and sender_entry[2] > now:
            skey = (sender_id, ox, oy, cs_range, rx_range)
            split = self._sender_cache.get(skey)
            if split is None:
                split = self._split_window(
                    self._point_window(sender, ox, oy, cs_range, rx_range, 0.0),
                    ox, oy, 0.0,
                )
                self._sender_cache[skey] = split
                self.window_builds += 1
            else:
                self.window_hits += 1
        else:
            epoch, anchor = memo.epoch_of(sender_id, now)
            if epoch is not None:
                ekey = (sender_id, epoch, cs_range, rx_range)
                split = self._epoch_cache.get(ekey)
                if split is None:
                    split = self._split_window(
                        self._point_window(
                            sender, anchor[0], anchor[1], cs_range, rx_range, self.band_m
                        ),
                        anchor[0], anchor[1], self.band_m,
                    )
                    self._epoch_cache[ekey] = split
                    self.window_builds += 1
                else:
                    self.window_hits += 1
        if split is None:
            # Fallback for mobility models without the motion-sample
            # contract: the per-cell window, with the sender filtered out
            # once and cached (so the hot consumers never see it).
            cx = math.floor(ox * self._inv_cell)
            cy = math.floor(oy * self._inv_cell)
            # The "cell" tag keeps this key space disjoint from the paused
            # exact-point keys sharing the cache (ints and whole floats hash
            # alike, so untagged cell indices could alias point coordinates).
            fkey = (sender_id, "cell", cx, cy, cs_range, rx_range)
            split = self._sender_cache.get(fkey)
            if split is None:
                split = self._split_window(
                    [
                        m for m in self._iwindow(cx, cy, cs_range, rx_range)
                        if m[2] is not sender
                    ],
                    None, None, 0.0,
                )
                self._sender_cache[fkey] = split
                self.window_builds += 1
            else:
                self.window_hits += 1
        template, boundary, ax, ay, band = split[0], split[1], split[2], split[3], split[4]
        if not boundary:
            return template
        if now < split[6]:
            # Every boundary verdict provably still holds: the previously
            # patched buffer is the answer, no copy, no patch walk.
            self.window_patch_hits += 1
            return split[5]
        cs_sq = cs_range * cs_range
        rx_sq = rx_range * rx_range
        memo_exact = memo.exact
        if ax is None:
            # Anchorless windows are classified per call against the actual
            # origin; their patched output is never reusable, so the shared
            # scratch buffer serves them.
            out = self._patched
            out.clear()
            out.extend(template)
            self._resolve_cellwise(
                out, boundary, ox, oy, cs_range, rx_range, cs_sq, rx_sq, now
            )
            return out
        out = split[5]
        if out is None:
            out = split[5] = []
        out.clear()
        out.extend(template)
        valid_until = math.inf
        rates = memo._rates
        memo_bounded = memo.bounded
        different_ranges = rx_range < cs_range
        for patch in boundary:
            deadline = patch[2]
            if deadline > now:
                out[patch[0]] = patch[3]
                if deadline < valid_until:
                    valid_until = deadline
                continue
            member = patch[1]
            node_id = member[1]
            # A possibly-stale cached position is enough: its drift bound is
            # folded into the certainty margin, so no interpolation happens
            # unless the member actually hugs a range boundary.
            position, drift = memo_bounded(node_id, now)
            dxa = position[0] - ax
            dya = position[1] - ay
            da = math.hypot(dxa, dya)
            # Anchor-relative certainty with a margin: the verdict holds
            # until the member may have drifted ``margin`` metres beyond its
            # current bound, because any origin stays within ``band`` of
            # the anchor.
            slack_total = band + drift
            if da - slack_total > cs_range + _DRIFT_EPSILON_M:
                resolved = (member[0], node_id, member[2], None)
                margin = da - slack_total - cs_range
            elif da + slack_total <= rx_range - _DRIFT_EPSILON_M:
                resolved = (member[0], node_id, member[2], True)
                margin = rx_range - da - slack_total
            elif (
                different_ranges
                and da - slack_total > rx_range + _DRIFT_EPSILON_M
                and da + slack_total <= cs_range - _DRIFT_EPSILON_M
            ):
                resolved = (member[0], node_id, member[2], False)
                margin = min(da - slack_total - rx_range, cs_range - da - slack_total)
            else:
                # Hugging a boundary relative to the anchor: classify
                # against the *actual origin* for this call only.  The
                # origin test carries only the member's own drift (no band),
                # so most hugging members still resolve without
                # interpolating; only true boundary-ambiguity interpolates.
                dx = position[0] - ox
                dy = position[1] - oy
                distance_sq = dx * dx + dy * dy
                if drift > 0.0:
                    in_cs = within_range(distance_sq, cs_range, drift)
                    in_range = within_range(distance_sq, rx_range, drift)
                    if in_cs is None or in_range is None:
                        position = memo_exact(node_id, now)
                        dx = position[0] - ox
                        dy = position[1] - oy
                        distance_sq = dx * dx + dy * dy
                        in_cs = distance_sq <= cs_sq
                        in_range = distance_sq <= rx_sq
                    if in_cs is False:
                        out[patch[0]] = (member[0], node_id, member[2], None)
                    else:
                        out[patch[0]] = (member[0], node_id, member[2], in_range)
                elif distance_sq > cs_sq:
                    out[patch[0]] = (member[0], node_id, member[2], None)
                else:
                    out[patch[0]] = (member[0], node_id, member[2], distance_sq <= rx_sq)
                patch[2] = now
                valid_until = now
                continue
            out[patch[0]] = resolved
            patch[3] = resolved
            rate = rates[node_id]
            if rate is None:
                deadline = now
            elif rate == 0.0:
                deadline = math.inf
            else:
                deadline = now + (margin - _DRIFT_EPSILON_M) / rate
            patch[2] = deadline
            if deadline < valid_until:
                valid_until = deadline
        split[6] = valid_until
        return out

    def _resolve_cellwise(self, out: List[tuple], boundary: List[list],
                          ox: float, oy: float, cs_range: float, rx_range: float,
                          cs_sq: float, rx_sq: float, now: float) -> None:
        """Per-call classification of anchorless (per-cell) windows.

        Inlines :meth:`PositionMemo.bounded` (same logic, kept in sync) and
        falls back to exact interpolation only for boundary-ambiguous
        members -- the pre-motion-service behaviour, kept for mobility
        models without the motion-sample contract.
        """
        memo = self.memo
        entries = memo._entries
        refresh_cap = memo.refresh_cap_m
        memo_exact = memo.exact
        # The paper's default geometry has carrier-sense range == reception
        # range; then "kept" implies "in range" and the per-candidate
        # classification needs a single radius.
        equal_ranges = cs_sq == rx_sq
        for patch in boundary:
            index, member = patch[0], patch[1]
            node_id = member[1]
            # -- inline PositionMemo.bounded(node_id, now) ------------------
            drift = 0.0
            entry = entries.get(node_id)
            if entry is None:
                position = memo_exact(node_id, now)
            else:
                position, computed_at, hold_until, rate, _ = entry
                if now != computed_at and not computed_at <= now < hold_until:
                    if rate is None or now < computed_at:
                        position = memo_exact(node_id, now)
                    else:
                        drift = rate * (now - hold_until)
                        if drift > refresh_cap:
                            position = memo_exact(node_id, now)
                            drift = 0.0
                        elif drift > 0.0:
                            drift += _DRIFT_EPSILON_M
            # -- classify against both radii --------------------------------
            dx = position[0] - ox
            dy = position[1] - oy
            distance_sq = dx * dx + dy * dy
            if drift > 0.0:
                outer = cs_range + drift
                if distance_sq > outer * outer:
                    out[index] = (member[0], node_id, member[2], None)
                    continue
                inner = cs_range - drift
                certain_cs = inner >= 0.0 and distance_sq <= inner * inner
                if equal_ranges:
                    in_range = True if certain_cs else None
                else:
                    # Inline within_range(distance_sq, rx_range, drift) (same
                    # logic, kept in sync): True/False when certain, None
                    # when within drift of the reception boundary.
                    rx_outer = rx_range + drift
                    if distance_sq > rx_outer * rx_outer:
                        in_range = False
                    else:
                        rx_inner = rx_range - drift
                        if rx_inner >= 0.0 and distance_sq <= rx_inner * rx_inner:
                            in_range = True
                        else:
                            in_range = None
                if in_range is None or not certain_cs:
                    # Within drift of a boundary: interpolate and retest.
                    position = memo_exact(node_id, now)
                    dx = position[0] - ox
                    dy = position[1] - oy
                    distance_sq = dx * dx + dy * dy
                    if distance_sq > cs_sq:
                        out[index] = (member[0], node_id, member[2], None)
                        continue
                    in_range = distance_sq <= rx_sq
            else:
                if distance_sq > cs_sq:
                    out[index] = (member[0], node_id, member[2], None)
                    continue
                in_range = distance_sq <= rx_sq
            out[index] = (member[0], node_id, member[2], in_range)

    def interferers(
        self,
        sender: "Phy",
        origin: Position,
        cs_range: float,
        rx_range: float,
        now: float,
        out: Optional[List[Tuple[int, int, "Phy", bool]]] = None,
    ) -> List[Tuple[int, int, "Phy", bool]]:
        """Classified interference set of a transmission starting at ``now``.

        Returns ``(order, node_id, phy, in_reception_range)`` for every
        *enabled* radio other than ``sender`` within ``cs_range`` of
        ``origin``, in registration order -- exactly what
        :class:`LinearScanIndex` computes by brute force.  The medium's hot
        path consumes :meth:`transmission_window` directly (skipping the
        filtered copy built here); this filtered form is kept for tests and
        tools.  Passing ``out`` reuses the caller's buffer (cleared first).
        """
        window = self.transmission_window(sender, origin, cs_range, rx_range, now)
        if out is None:
            out = []
        else:
            out.clear()
        append = out.append
        for member in window:
            if not member[2].enabled or member[3] is None:
                continue
            append(member)
        # The window is pre-sorted, so `out` is already in registration order.
        return out


class TorusGridIndex(UniformGridIndex):
    """Uniform grid over a torus: opposite area edges are identified.

    Cell sizes are chosen per axis so the grid period equals the area
    exactly (otherwise wrapped cell indexes and wrapped distances would
    disagree near the seam), window enumeration wraps cell coordinates
    modulo the grid dimensions, and every distance uses the minimum-image
    convention.  Classification goes through the memo's drift bounds like
    the flat grid (the torus metric is 1-Lipschitz in node displacement, so
    the same conservative intervals apply); the flat grid's cell-rectangle
    pre-classification is not carried over, but the per-sender windows are:
    paused senders classify against their exact point and moving senders
    against their displacement-epoch anchor, both under the minimum-image
    metric (see :meth:`_point_window`).
    """

    def __init__(self, cell_m: float, slack_m: float, width_m: float, height_m: float,
                 band_m: Optional[float] = None, membership=None):
        super().__init__(cell_m=cell_m, slack_m=slack_m, band_m=band_m,
                         membership=membership)
        if width_m <= 0 or height_m <= 0:
            raise ValueError("torus dimensions must be positive")
        self.width_m = width_m
        self.height_m = height_m
        #: Cells per axis; cell sizes divide the area exactly.
        self._nx = max(1, int(width_m // cell_m))
        self._ny = max(1, int(height_m // cell_m))
        self._cell_x = width_m / self._nx
        self._cell_y = height_m / self._ny

    def _cell_key(self, x: float, y: float) -> Tuple[int, int]:
        # floor, not int(): truncation would bucket coordinates in
        # (-cell, 0) into cell 0 instead of the seam cell n-1, and the
        # window enumeration would miss in-range interferers there.
        return (
            math.floor(x / self._cell_x) % self._nx,
            math.floor(y / self._cell_y) % self._ny,
        )

    def _window(self, cx: int, cy: int, radius: float) -> List[Tuple[int, int, "Phy"]]:
        """Members of every cell within wrapped reach of cell ``(cx, cy)``."""
        key = (cx, cy, radius)
        cached = self._window_cache.get(key)
        if cached is not None:
            return cached
        reach = radius + self.memo.refresh_cap_m + self.slack_m
        nx, ny = self._nx, self._ny
        kx = int(reach / self._cell_x) + 1
        ky = int(reach / self._cell_y) + 1
        xs = range(nx) if 2 * kx + 1 >= nx else [(cx + j) % nx for j in range(-kx, kx + 1)]
        ys = range(ny) if 2 * ky + 1 >= ny else [(cy + j) % ny for j in range(-ky, ky + 1)]
        cells = self._cells
        out: List[Tuple[int, int, "Phy"]] = []
        for gx in xs:
            for gy in ys:
                bucket = cells.get((gx, gy))
                if bucket:
                    out.extend(bucket)
        out.sort()
        self._window_cache[key] = out
        return out

    def candidates(
        self, origin: Position, radius: float, now: float
    ) -> List[Tuple[int, int, "Phy"]]:
        self._ensure_current(now)
        cx, cy = self._cell_key(origin[0], origin[1])
        return self._window(cx, cy, radius)

    def _point_window(self, sender: "Phy", px: float, py: float,
                      cs_range: float, rx_range: float, extra_m: float) -> List[tuple]:
        """An interference window pre-classified against a wrapped point.

        ``extra_m`` is the sender's own position uncertainty relative to the
        point: 0 for a paused sender classified against its exact position,
        the displacement band for a moving sender classified against its
        epoch anchor.  Member budgets add their build staleness and the
        fleet slack, so every verdict holds for any instant of the grid
        epoch and any sender origin within ``extra_m`` of the point.
        """
        slack = self.slack_m + extra_m + _DRIFT_EPSILON_M
        w, h = self.width_m, self.height_m
        build_pos = self._build_pos
        hypot = math.hypot
        cx, cy = self._cell_key(px, py)
        out: List[tuple] = []
        for order, node_id, phy in self._window(cx, cy, cs_range + extra_m):
            if phy is sender:
                continue
            (bx, by), build_drift = build_pos[node_id]
            budget = build_drift + slack
            dx = bx - px
            dx -= w * round(dx / w)
            dy = by - py
            dy -= h * round(dy / h)
            d = hypot(dx, dy)
            if d - budget > cs_range:
                continue
            if d + budget <= rx_range:
                certain = True
            elif rx_range < cs_range and d - budget > rx_range and d + budget <= cs_range:
                certain = False
            else:
                certain = None
            out.append((order, node_id, phy, certain))
        return out

    def transmission_window(
        self, sender: "Phy", origin: Position, cs_range: float, rx_range: float,
        now: float,
    ) -> List[tuple]:
        """The resolved interference window under the minimum-image metric.

        Same contract and caching structure as the flat grid's
        :meth:`UniformGridIndex.transmission_window`: per-sender windows
        bound to the exact point while the sender provably holds still, to
        the displacement-epoch anchor while it moves, and a per-cell
        fallback (everything classified per query) for mobility models
        without the motion-sample contract.
        """
        self._ensure_current(now)
        ox, oy = origin
        memo = self.memo
        sender_id = sender.node_id
        sender_entry = memo._entries.get(sender_id)
        split = None
        if sender_entry is not None and sender_entry[2] > now:
            skey = (sender_id, ox, oy, cs_range, rx_range)
            split = self._sender_cache.get(skey)
            if split is None:
                split = self._split_window(
                    self._point_window(sender, ox, oy, cs_range, rx_range, 0.0),
                    ox, oy, 0.0,
                )
                self._sender_cache[skey] = split
                self.window_builds += 1
            else:
                self.window_hits += 1
        else:
            epoch, anchor = memo.epoch_of(sender_id, now)
            if epoch is not None:
                ekey = (sender_id, epoch, cs_range, rx_range)
                split = self._epoch_cache.get(ekey)
                if split is None:
                    split = self._split_window(
                        self._point_window(
                            sender, anchor[0], anchor[1], cs_range, rx_range, self.band_m
                        ),
                        anchor[0], anchor[1], self.band_m,
                    )
                    self._epoch_cache[ekey] = split
                    self.window_builds += 1
                else:
                    self.window_hits += 1
        if split is None:
            cx, cy = self._cell_key(ox, oy)
            # The "cell" tag keeps this key space disjoint from the paused
            # exact-point keys sharing the cache (ints and whole floats hash
            # alike, so untagged cell indices could alias point coordinates).
            fkey = (sender_id, "cell", cx, cy, cs_range, rx_range)
            split = self._sender_cache.get(fkey)
            if split is None:
                split = self._split_window(
                    [
                        (order, node_id, phy, None)
                        for order, node_id, phy in self._window(cx, cy, cs_range)
                        if phy is not sender
                    ],
                    None, None, 0.0,
                )
                self._sender_cache[fkey] = split
                self.window_builds += 1
            else:
                self.window_hits += 1
        template, boundary, ax, ay, band = split[0], split[1], split[2], split[3], split[4]
        if not boundary:
            return template
        if now < split[6]:
            # See the flat grid: the patched buffer provably still holds.
            self.window_patch_hits += 1
            return split[5]
        w, h = self.width_m, self.height_m
        cs_sq = cs_range * cs_range
        rx_sq = rx_range * rx_range
        memo_exact = memo.exact
        if ax is None:
            out = self._patched
            out.clear()
            out.extend(template)
            # Anchorless fallback: wrapped per-call classification through
            # the memo's drift bounds (the pre-motion-service behaviour).
            for patch in boundary:
                index, member = patch[0], patch[1]
                node_id = member[1]
                position, drift = memo.bounded(node_id, now)
                dx = position[0] - ox
                dx -= w * round(dx / w)
                dy = position[1] - oy
                dy -= h * round(dy / h)
                distance_sq = dx * dx + dy * dy
                if drift > 0.0:
                    in_cs = within_range(distance_sq, cs_range, drift)
                    in_range = within_range(distance_sq, rx_range, drift)
                    if in_cs is None or in_range is None:
                        position = memo_exact(node_id, now)
                        dx = position[0] - ox
                        dx -= w * round(dx / w)
                        dy = position[1] - oy
                        dy -= h * round(dy / h)
                        distance_sq = dx * dx + dy * dy
                        in_cs = distance_sq <= cs_sq
                        in_range = distance_sq <= rx_sq
                    if in_cs is False:
                        out[index] = (member[0], node_id, member[2], None)
                        continue
                else:
                    if distance_sq > cs_sq:
                        out[index] = (member[0], node_id, member[2], None)
                        continue
                    in_range = distance_sq <= rx_sq
                out[index] = (member[0], node_id, member[2], in_range)
            return out
        # Anchored windows: deadline-cached verdicts exactly like the flat
        # grid, under the minimum-image metric (1-Lipschitz in member
        # displacement, so the same drift margins apply).
        out = split[5]
        if out is None:
            out = split[5] = []
        out.clear()
        out.extend(template)
        valid_until = math.inf
        rates = memo._rates
        memo_bounded = memo.bounded
        different_ranges = rx_range < cs_range
        for patch in boundary:
            deadline = patch[2]
            if deadline > now:
                out[patch[0]] = patch[3]
                if deadline < valid_until:
                    valid_until = deadline
                continue
            member = patch[1]
            node_id = member[1]
            position, drift = memo_bounded(node_id, now)
            dxa = position[0] - ax
            dxa -= w * round(dxa / w)
            dya = position[1] - ay
            dya -= h * round(dya / h)
            da = math.hypot(dxa, dya)
            slack_total = band + drift
            if da - slack_total > cs_range + _DRIFT_EPSILON_M:
                resolved = (member[0], node_id, member[2], None)
                margin = da - slack_total - cs_range
            elif da + slack_total <= rx_range - _DRIFT_EPSILON_M:
                resolved = (member[0], node_id, member[2], True)
                margin = rx_range - da - slack_total
            elif (
                different_ranges
                and da - slack_total > rx_range + _DRIFT_EPSILON_M
                and da + slack_total <= cs_range - _DRIFT_EPSILON_M
            ):
                resolved = (member[0], node_id, member[2], False)
                margin = min(da - slack_total - rx_range, cs_range - da - slack_total)
            else:
                # Hugging a boundary relative to the anchor: wrapped
                # origin-based classification for this call only (drift-only
                # uncertainty, interpolation as the last resort).
                dx = position[0] - ox
                dx -= w * round(dx / w)
                dy = position[1] - oy
                dy -= h * round(dy / h)
                distance_sq = dx * dx + dy * dy
                if drift > 0.0:
                    in_cs = within_range(distance_sq, cs_range, drift)
                    in_range = within_range(distance_sq, rx_range, drift)
                    if in_cs is None or in_range is None:
                        position = memo_exact(node_id, now)
                        dx = position[0] - ox
                        dx -= w * round(dx / w)
                        dy = position[1] - oy
                        dy -= h * round(dy / h)
                        distance_sq = dx * dx + dy * dy
                        in_cs = distance_sq <= cs_sq
                        in_range = distance_sq <= rx_sq
                    if in_cs is False:
                        out[patch[0]] = (member[0], node_id, member[2], None)
                    else:
                        out[patch[0]] = (member[0], node_id, member[2], in_range)
                elif distance_sq > cs_sq:
                    out[patch[0]] = (member[0], node_id, member[2], None)
                else:
                    out[patch[0]] = (member[0], node_id, member[2], distance_sq <= rx_sq)
                patch[2] = now
                valid_until = now
                continue
            out[patch[0]] = resolved
            patch[3] = resolved
            rate = rates[node_id]
            if rate is None:
                deadline = now
            elif rate == 0.0:
                deadline = math.inf
            else:
                deadline = now + (margin - _DRIFT_EPSILON_M) / rate
            patch[2] = deadline
            if deadline < valid_until:
                valid_until = deadline
        split[6] = valid_until
        return out


class LinearScanIndex:
    """The O(N) reference: every radio is a candidate, nothing is cached.

    This is the original medium semantics laid bare: every registered
    radio's position is interpolated on demand and every distance is
    computed, O(N) per query.  Kept selectable so the grid index can be
    proven equivalent against it -- on the flat rectangle and, via ``wrap``,
    on the torus (wrapped distances by brute force).
    """

    #: Telemetry counters, kept for a uniform ``spatial.index.*`` read path;
    #: the linear scan neither caches nor rebuilds, so they stay zero.
    grid_rebuilds = 0
    window_hits = 0
    window_builds = 0
    window_patch_hits = 0

    def __init__(self, wrap: Optional[Tuple[float, float]] = None, membership=None):
        self._members: List[Tuple[int, int, "Phy"]] = []
        self._wrap = wrap
        #: See :attr:`UniformGridIndex.membership` -- same halo-filter hook.
        self.membership = membership
        #: Reused by :meth:`transmission_window` so the per-transmission
        #: scan stays allocation-free (the medium consumes the window
        #: before the next transmission starts).
        self._window_buf: List[Tuple[int, int, "Phy", bool]] = []

    def add(self, phy: "Phy") -> None:
        if self.membership is not None and not self.membership(phy):
            return
        self._members.append((len(self._members), phy.node_id, phy))

    def members(self) -> List[Tuple[int, int, "Phy"]]:
        """Every registered radio as ``(order, node_id, phy)`` triples."""
        return self._members

    def invalidate(self, node_id: Optional[int] = None) -> None:
        """Nothing is cached, so there is nothing to invalidate."""

    def exact(self, phy: "Phy", now: float) -> Position:
        return phy.position(now)

    def bounded(self, phy: "Phy", now: float) -> Tuple[Position, float]:
        return phy.position(now), 0.0

    def candidates(
        self, origin: Position, radius: float, now: float
    ) -> List[Tuple[int, int, "Phy"]]:
        return self._members

    def transmission_window(
        self, sender: "Phy", origin: Position, cs_range: float, rx_range: float,
        now: float,
    ) -> List[Tuple[int, int, "Phy", bool]]:
        """The resolved window, by exhaustive scan (nothing is cached).

        The scan can filter inline, so unlike the grid variants the result
        never contains the sender, disabled radios or ``None`` verdicts --
        callers' filtering simply finds nothing to do.
        """
        return self.interferers(
            sender, origin, cs_range, rx_range, now, out=self._window_buf
        )

    def interferers(
        self,
        sender: "Phy",
        origin: Position,
        cs_range: float,
        rx_range: float,
        now: float,
        out: Optional[List[Tuple[int, int, "Phy", bool]]] = None,
    ) -> List[Tuple[int, int, "Phy", bool]]:
        """Classified interference set, by exhaustive scan."""
        ox, oy = origin
        cs_sq = cs_range * cs_range
        rx_sq = rx_range * rx_range
        wrap = self._wrap
        if out is None:
            out = []
        else:
            out.clear()
        for order, node_id, phy in self._members:
            if phy is sender or not phy.enabled:
                continue
            position = phy.position(now)
            dx = position[0] - ox
            dy = position[1] - oy
            if wrap is not None:
                w, h = wrap
                dx -= w * round(dx / w)
                dy -= h * round(dy / h)
            distance_sq = dx * dx + dy * dy
            if distance_sq > cs_sq:
                continue
            out.append((order, node_id, phy, distance_sq <= rx_sq))
        return out


def region_census(index, classify, now: float) -> Dict[int, int]:
    """Count the index's enabled radios per spatial region at ``now``.

    ``classify`` maps an exact position to a region id -- typically
    ``repro.sim.shard.ShardPlan.shard_of``.  Used by the sharded engine's
    run statistics to report how the fleet was actually distributed over the
    shard regions at a given instant (nodes roam freely, so this drifts from
    the home-shard assignment over a run).
    """
    census: Dict[int, int] = {}
    for _, _, phy in index.members():
        if not phy.enabled:
            continue
        x, y = index.exact(phy, now)
        region = classify(x, y)
        census[region] = census.get(region, 0) + 1
    return census

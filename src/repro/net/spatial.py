"""Spatial indexing for the wireless medium.

The medium's hot path asks one question thousands of times per simulated
second: *which radios lie within a given range of this point, right now?*
The naive answer interpolates every registered node's mobility model and
computes every distance -- O(N) per transmission, O(N^2) per beacon round --
which dominates the wall-clock time of paper-scale sweeps.

This module answers the same question in O(k) for the k nodes near the query
point, without changing a single simulation outcome:

:class:`PositionMemo`
    A per-instant position cache over the analytic mobility models.  Each
    node's position is interpolated at most once per simulation instant.  Two
    mobility hooks stretch entries across instants:

    * :meth:`~repro.mobility.base.MobilityModel.position_hold` lets pausing
      models (random waypoint between legs, static placement) declare how
      long a position provably stays constant, and
    * :meth:`~repro.mobility.base.MobilityModel.speed_bound_mps` turns a
      stale entry into a conservative distance *interval*: a node cached
      ``d`` metres from a point at most ``drift`` metres ago is certainly
      within range ``r`` when ``d + drift <= r`` and certainly outside when
      ``d - drift > r``.  Only the rare boundary-ambiguous pairs fall back to
      exact interpolation, so classification is exact while interpolation is
      amortised away.

    Scripted teleports (``StaticMobility.move_to``) invalidate entries
    through the mobility position listeners, so cached bounds never lie.

:class:`UniformGridIndex`
    A uniform grid with cell size of the order of the carrier-sense range,
    built lazily from memoised positions and kept until accumulated drift
    (``speed bound x age``) exceeds a slack budget.  Queries inflate their
    radius by the worst-case staleness, so the returned candidate set is a
    guaranteed superset of the true in-range set; the medium then classifies
    each candidate exactly through the memo.

:class:`LinearScanIndex`
    The O(N) reference implementation with the exact semantics of the
    original medium: every registered radio is a candidate and every position
    is interpolated on demand, uncached.  Selectable via
    ``RadioConfig(medium_index="naive")`` so grid/naive equivalence stays
    testable (see ``tests/properties/test_medium_equivalence.py``).

Candidates are always reported in registration order, which is the order the
naive implementation iterates radios in -- reception lists, delivery
callbacks and therefore every downstream statistic are bit-identical between
the two implementations.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.phy import Phy

Position = Tuple[float, float]

#: Safety margin added to drift bounds so a node moving at exactly its speed
#: bound can never be misclassified by floating-point rounding of the bound
#: arithmetic; pairs this close to a range boundary re-interpolate instead.
_DRIFT_EPSILON_M = 1e-9


def within_range(distance_sq: float, radius: float, drift: float) -> Optional[bool]:
    """Classify a cached squared distance against ``radius`` under ``drift``.

    ``distance_sq`` was computed from a position that may be up to ``drift``
    metres away from the node's true position.  Returns ``True`` / ``False``
    when the classification is certain either way and ``None`` when the pair
    lies within ``drift`` of the boundary and needs an exact position.
    """
    outer = radius + drift
    if distance_sq > outer * outer:
        return False
    inner = radius - drift
    if inner >= 0.0 and distance_sq <= inner * inner:
        return True
    return None


class PositionMemo:
    """Bounded-drift position cache keyed by node id.

    ``exact`` returns the true position at ``now`` (interpolating at most
    once per node per instant); ``bounded`` returns a possibly stale cached
    position together with a conservative bound on how far the node may have
    drifted from it, refreshing the entry whenever the bound exceeds
    ``refresh_cap_m``.
    """

    def __init__(self, refresh_cap_m: float = 0.0):
        self.refresh_cap_m = refresh_cap_m
        #: node_id -> (position, computed_at, hold_until, speed bound); the
        #: static per-node speed bound rides inside the entry so the hot
        #: classification loops resolve one dict lookup instead of two.
        self._entries: Dict[int, Tuple[Position, float, float, Optional[float]]] = {}
        self._holds: Dict[int, object] = {}
        self._rates: Dict[int, Optional[float]] = {}
        self._phys: Dict[int, "Phy"] = {}

    def track(self, phy: "Phy") -> None:
        """Start caching positions for ``phy``'s node."""
        node_id = phy.node_id
        mobility = getattr(phy.node, "mobility", None)
        self._phys[node_id] = phy
        self._holds[node_id] = getattr(mobility, "position_hold", None)
        self._rates[node_id] = getattr(mobility, "speed_bound_mps", None)

    def rate_of(self, node_id: int) -> Optional[float]:
        """The node's speed bound (``None`` when unknown)."""
        return self._rates[node_id]

    def exact(self, node_id: int, now: float) -> Position:
        """The true position at ``now``; interpolates at most once per instant."""
        entry = self._entries.get(node_id)
        if entry is not None:
            position, computed_at, hold_until, _ = entry
            if now == computed_at or computed_at <= now < hold_until:
                return position
        hold = self._holds[node_id]
        if hold is not None:
            position, hold_until = hold(now)
        else:
            position, hold_until = self._phys[node_id].position(now), now
        self._entries[node_id] = (position, now, hold_until, self._rates[node_id])
        return position

    def bounded(self, node_id: int, now: float) -> Tuple[Position, float]:
        """A cached position plus a conservative drift bound in metres.

        A zero drift means the returned position is exact at ``now``.
        """
        entry = self._entries.get(node_id)
        if entry is None:
            return self.exact(node_id, now), 0.0
        position, computed_at, hold_until, rate = entry
        if now == computed_at or computed_at <= now < hold_until:
            return position, 0.0
        if rate is None or now < computed_at:
            return self.exact(node_id, now), 0.0
        drift = rate * (now - hold_until)
        if drift > self.refresh_cap_m:
            return self.exact(node_id, now), 0.0
        if drift > 0.0:
            drift += _DRIFT_EPSILON_M
        return position, drift

    def invalidate(self, node_id: Optional[int] = None) -> None:
        """Drop one node's entry (or all of them after a bulk change)."""
        if node_id is None:
            self._entries.clear()
        else:
            self._entries.pop(node_id, None)


class UniformGridIndex:
    """Uniform-grid candidate index over memoised positions.

    The grid buckets nodes by ``cell_m``-sized cells from positions that are
    at most ``slack_m`` metres stale; it is rebuilt once accumulated motion
    (the fleet speed bound times the grid's age) exceeds ``slack_m`` -- or on
    every new timestamp when any node's speed is unbounded.  Queries inflate
    their radius by both staleness terms, so candidate sets are supersets of
    the truth and exact classification is delegated to the memo.
    """

    def __init__(self, cell_m: float, slack_m: float):
        if cell_m <= 0:
            raise ValueError("cell_m must be positive")
        if slack_m < 0:
            raise ValueError("slack_m must be non-negative")
        self.cell_m = cell_m
        self.slack_m = slack_m
        self._inv_cell = 1.0 / cell_m
        self.memo = PositionMemo(refresh_cap_m=slack_m)
        #: (registration order, node id, phy) triples.
        self._members: List[Tuple[int, int, "Phy"]] = []
        self._cells: Dict[Tuple[int, int], List[Tuple[int, int, "Phy"]]] = {}
        #: (origin cell, radius) -> concatenated buckets of the cells a query
        #: from anywhere in that origin cell can reach; valid until rebuild.
        self._window_cache: Dict[Tuple[int, int, float], List[Tuple[int, int, "Phy"]]] = {}
        #: (origin cell, cs range, rx range) -> window pre-classified per
        #: member for the whole grid epoch (see :meth:`_iwindow`).
        self._iwindow_cache: Dict[tuple, List[tuple]] = {}
        #: (sender id, exact position, cs, rx) -> window pre-classified
        #: against that exact point (much tighter than the cell bounds; built
        #: only for senders sitting still, see :meth:`interferers`).
        self._sender_cache: Dict[tuple, List[tuple]] = {}
        #: node_id -> (memo position used to bucket it at the last rebuild,
        #: that position's staleness bound in metres at build time).
        self._build_pos: Dict[int, Tuple[Position, float]] = {}
        self._built_at: Optional[float] = None
        self._dirty = True
        #: Max speed bound over every tracked node; ``None`` once any node's
        #: bound is unknown (degrades to rebuild-per-timestamp).
        self._speed_bound: Optional[float] = 0.0
        self.rebuilds = 0  # diagnostic counter

    # --------------------------------------------------------------- members
    def add(self, phy: "Phy") -> None:
        """Track a radio; the grid is rebuilt lazily on the next query."""
        self.memo.track(phy)
        self._members.append((len(self._members), phy.node_id, phy))
        rate = self.memo.rate_of(phy.node_id)
        if rate is None or self._speed_bound is None:
            self._speed_bound = None
        else:
            self._speed_bound = max(self._speed_bound, rate)
        self._dirty = True

    def invalidate(self, node_id: Optional[int] = None) -> None:
        """Invalidate cached positions (and the grid) after a teleport."""
        self.memo.invalidate(node_id)
        self._dirty = True

    # --------------------------------------------------------------- queries
    def exact(self, phy: "Phy", now: float) -> Position:
        return self.memo.exact(phy.node_id, now)

    def bounded(self, phy: "Phy", now: float) -> Tuple[Position, float]:
        return self.memo.bounded(phy.node_id, now)

    def _grid_age_drift(self, now: float) -> Optional[float]:
        """Worst-case motion since the grid was built; ``None`` = rebuild."""
        if self._dirty or self._built_at is None:
            return None
        if now == self._built_at:
            return 0.0
        bound = self._speed_bound
        if bound is None:
            return None  # unknown speeds: the grid is only valid at build time
        drift = bound * (now - self._built_at)
        if drift > self.slack_m:
            return None
        return drift

    def _cell_key(self, x: float, y: float) -> Tuple[int, int]:
        """Grid cell containing ``(x, y)`` (overridden by the torus variant)."""
        inv_cell = self._inv_cell
        return (math.floor(x * inv_cell), math.floor(y * inv_cell))

    def _rebuild(self, now: float) -> None:
        cells: Dict[Tuple[int, int], List[Tuple[int, int, "Phy"]]] = {}
        build_pos: Dict[int, Tuple[Position, float]] = {}
        memo = self.memo
        cell_key = self._cell_key
        for member in self._members:
            position, drift = memo.bounded(member[1], now)
            build_pos[member[1]] = (position, drift)
            key = cell_key(position[0], position[1])
            bucket = cells.get(key)
            if bucket is None:
                cells[key] = [member]
            else:
                bucket.append(member)
        self._cells = cells
        self._build_pos = build_pos
        self._window_cache.clear()
        self._iwindow_cache.clear()
        self._sender_cache.clear()
        self._built_at = now
        self._dirty = False
        self.rebuilds += 1

    def _ensure_current(self, now: float) -> None:
        """Rebuild the grid if its accumulated drift exceeds the slack."""
        if self._grid_age_drift(now) is None:
            self._rebuild(now)

    def _window(self, cx: int, cy: int, radius: float) -> List[Tuple[int, int, "Phy"]]:
        """Members reachable within ``radius`` from anywhere in cell (cx, cy).

        The reach is inflated by the full staleness budget (cached positions
        up to ``refresh_cap`` stale at build plus up to ``slack_m`` of fleet
        motion before the next rebuild), so the cached window stays a valid
        superset for any query instant of the current grid epoch.  Cached per
        (cell, radius) until the next rebuild -- senders in the same cell
        share one bucket concatenation.
        """
        key = (cx, cy, radius)
        cached = self._window_cache.get(key)
        if cached is not None:
            return cached
        cell_m = self.cell_m
        inv_cell = self._inv_cell
        reach = radius + self.memo.refresh_cap_m + self.slack_m
        x0 = cx * cell_m
        x1 = x0 + cell_m
        y0 = cy * cell_m
        y1 = y0 + cell_m
        gx_lo = math.floor((x0 - reach) * inv_cell)
        gx_hi = math.floor((x1 + reach) * inv_cell)
        gy_lo = math.floor((y0 - reach) * inv_cell)
        gy_hi = math.floor((y1 + reach) * inv_cell)
        reach_sq = reach * reach
        cells = self._cells
        out: List[Tuple[int, int, "Phy"]] = []
        for gx in range(gx_lo, gx_hi + 1):
            gx0 = gx * cell_m
            if gx0 > x1:
                dx = gx0 - x1
            elif gx0 + cell_m < x0:
                dx = x0 - gx0 - cell_m
            else:
                dx = 0.0
            dx_sq = dx * dx
            for gy in range(gy_lo, gy_hi + 1):
                bucket = cells.get((gx, gy))
                if not bucket:
                    continue
                gy0 = gy * cell_m
                if gy0 > y1:
                    dy = gy0 - y1
                elif gy0 + cell_m < y0:
                    dy = y0 - gy0 - cell_m
                else:
                    dy = 0.0
                # Skip cells entirely beyond reach of the origin cell.
                if dx_sq + dy * dy > reach_sq:
                    continue
                out.extend(bucket)
        # Sort once here so every query that filters the window inherits
        # registration order without re-sorting.
        out.sort()
        self._window_cache[key] = out
        return out

    def _sender_window(self, sender: "Phy", ox: float, oy: float,
                       cs_range: float, rx_range: float) -> List[tuple]:
        """The interference window pre-classified against an exact point.

        Same verdicts and epoch-validity argument as :meth:`_iwindow`, but
        the distance bounds are taken from the point ``(ox, oy)`` instead of
        the whole origin cell, so far more members become certain (the
        boundary band shrinks from cell-diagonal width to the error budget).
        The sender itself is excluded while building.
        """
        inv_cell = self._inv_cell
        slack = self.slack_m + _DRIFT_EPSILON_M
        build_pos = self._build_pos
        hypot = math.hypot
        out: List[tuple] = []
        for member in self._iwindow(
            math.floor(ox * inv_cell), math.floor(oy * inv_cell), cs_range, rx_range
        ):
            phy = member[2]
            if phy is sender:
                continue
            certain = member[3]
            if certain is None:
                (px, py), build_drift = build_pos[member[1]]
                budget = build_drift + slack
                d = hypot(px - ox, py - oy)
                if d - budget > cs_range:
                    continue
                if d + budget <= rx_range:
                    certain = True
                elif rx_range < cs_range and d - budget > rx_range and d + budget <= cs_range:
                    certain = False
            out.append(member if certain is member[3] else (member[0], member[1], phy, certain))
        return out

    def candidates(
        self, origin: Position, radius: float, now: float
    ) -> List[Tuple[int, int, "Phy"]]:
        """Every radio possibly within ``radius`` of ``origin`` at ``now``.

        Returned in registration order as ``(order, node_id, phy)`` triples;
        a guaranteed superset of the true in-range set (callers classify each
        candidate exactly).
        """
        self._ensure_current(now)
        inv_cell = self._inv_cell
        return self._window(
            math.floor(origin[0] * inv_cell), math.floor(origin[1] * inv_cell), radius
        )

    def _iwindow(self, cx: int, cy: int, cs_range: float, rx_range: float) -> List[tuple]:
        """The interference window pre-classified per member for this epoch.

        For every member of the plain window the build-time position is
        compared against the origin *cell rectangle* under the full epoch
        error budget (position staleness at build plus fleet motion before
        the next rebuild).  That yields, per member, a verdict valid for any
        transmission from this cell at any instant of the grid epoch:

        * provably beyond carrier-sense reach -> dropped from the window,
        * provably within reception range -> ``certain = True``,
        * provably sensed but out of reception range -> ``certain = False``
          (only possible when the carrier-sense range exceeds the reception
          range),
        * anything else -> ``certain = None`` (classified per query).

        Returned as ``(order, node_id, phy, certain)`` tuples in registration
        order and cached until the next rebuild, so the per-transmission loop
        does distance work only for the boundary band.
        """
        key = (cx, cy, cs_range, rx_range)
        cached = self._iwindow_cache.get(key)
        if cached is not None:
            return cached
        # Per-member error budget: the member's actual staleness at build
        # (often zero, and never above the memo's refresh cap) plus the
        # fleet-motion slack before the next rebuild.
        slack = self.slack_m + _DRIFT_EPSILON_M
        cell_m = self.cell_m
        x0 = cx * cell_m
        x1 = x0 + cell_m
        y0 = cy * cell_m
        y1 = y0 + cell_m
        build_pos = self._build_pos
        hypot = math.hypot
        out: List[tuple] = []
        for order, node_id, phy in self._window(cx, cy, cs_range):
            (px, py), build_drift = build_pos[node_id]
            budget = build_drift + slack
            dx_out = x0 - px if px < x0 else (px - x1 if px > x1 else 0.0)
            dy_out = y0 - py if py < y0 else (py - y1 if py > y1 else 0.0)
            dmin = hypot(dx_out, dy_out)
            if dmin - budget > cs_range:
                continue
            dx_far = px - x0 if px - x0 > x1 - px else x1 - px
            dy_far = py - y0 if py - y0 > y1 - py else y1 - py
            dmax = hypot(dx_far, dy_far)
            if dmax + budget <= rx_range:
                certain = True
            elif rx_range < cs_range and dmin - budget > rx_range and dmax + budget <= cs_range:
                certain = False
            else:
                certain = None
            out.append((order, node_id, phy, certain))
        self._iwindow_cache[key] = out
        return out

    def interferers(
        self,
        sender: "Phy",
        origin: Position,
        cs_range: float,
        rx_range: float,
        now: float,
        out: Optional[List[Tuple[int, int, "Phy", bool]]] = None,
    ) -> List[Tuple[int, int, "Phy", bool]]:
        """Classified interference set of a transmission starting at ``now``.

        Returns ``(order, node_id, phy, in_reception_range)`` for every
        *enabled* radio other than ``sender`` within ``cs_range`` of
        ``origin``, in registration order -- exactly what
        :class:`LinearScanIndex` computes by brute force.  The hot loop below
        inlines :meth:`PositionMemo.bounded` (same logic, kept in sync) and
        falls back to exact interpolation only for boundary-ambiguous
        candidates.  Passing ``out`` reuses the caller's buffer (cleared
        first) instead of materialising a fresh list per transmission.
        """
        self._ensure_current(now)
        ox, oy = origin
        cs_sq = cs_range * cs_range
        rx_sq = rx_range * rx_range
        memo = self.memo
        entries = memo._entries
        refresh_cap = memo.refresh_cap_m
        memo_exact = memo.exact
        inv_cell = self._inv_cell
        # A sender that is provably sitting still (its memo entry holds past
        # ``now``) classifies against a window bound to its *exact* position:
        # far tighter than the cell-rectangle bounds, and stable across the
        # many transmissions a paused node makes from one spot.
        sender_entry = entries.get(sender.node_id)
        window = None
        if sender_entry is not None and sender_entry[2] > now:
            skey = (sender.node_id, ox, oy, cs_range, rx_range)
            window = self._sender_cache.get(skey)
            if window is None:
                window = self._sender_window(sender, ox, oy, cs_range, rx_range)
                self._sender_cache[skey] = window
        if window is None:
            window = self._iwindow(
                math.floor(ox * inv_cell), math.floor(oy * inv_cell), cs_range, rx_range
            )
        if out is None:
            out = []
        else:
            out.clear()
        append = out.append
        # The paper's default geometry has carrier-sense range == reception
        # range; then "kept" implies "in range" and the per-candidate
        # classification needs a single radius.
        equal_ranges = cs_sq == rx_sq
        for member in window:
            phy = member[2]
            if phy is sender or not phy.enabled:
                continue
            certain = member[3]
            if certain is not None:
                append((member[0], member[1], phy, certain))
                continue
            node_id = member[1]
            # -- inline PositionMemo.bounded(node_id, now) ------------------
            drift = 0.0
            entry = entries.get(node_id)
            if entry is None:
                position = memo_exact(node_id, now)
            else:
                position, computed_at, hold_until, rate = entry
                if now != computed_at and not computed_at <= now < hold_until:
                    if rate is None or now < computed_at:
                        position = memo_exact(node_id, now)
                    else:
                        drift = rate * (now - hold_until)
                        if drift > refresh_cap:
                            position = memo_exact(node_id, now)
                            drift = 0.0
                        elif drift > 0.0:
                            drift += _DRIFT_EPSILON_M
            # -- classify against both radii --------------------------------
            dx = position[0] - ox
            dy = position[1] - oy
            distance_sq = dx * dx + dy * dy
            if drift > 0.0:
                outer = cs_range + drift
                if distance_sq > outer * outer:
                    continue
                inner = cs_range - drift
                certain_cs = inner >= 0.0 and distance_sq <= inner * inner
                if equal_ranges:
                    in_range = True if certain_cs else None
                else:
                    # Inline within_range(distance_sq, rx_range, drift) (same
                    # logic, kept in sync): True/False when certain, None
                    # when within drift of the reception boundary.
                    rx_outer = rx_range + drift
                    if distance_sq > rx_outer * rx_outer:
                        in_range = False
                    else:
                        rx_inner = rx_range - drift
                        if rx_inner >= 0.0 and distance_sq <= rx_inner * rx_inner:
                            in_range = True
                        else:
                            in_range = None
                if in_range is None or not certain_cs:
                    # Within drift of a boundary: interpolate and retest.
                    position = memo_exact(node_id, now)
                    dx = position[0] - ox
                    dy = position[1] - oy
                    distance_sq = dx * dx + dy * dy
                    if distance_sq > cs_sq:
                        continue
                    in_range = distance_sq <= rx_sq
            else:
                if distance_sq > cs_sq:
                    continue
                in_range = distance_sq <= rx_sq
            append((member[0], node_id, phy, in_range))
        # The window is pre-sorted, so `out` is already in registration order.
        return out


class TorusGridIndex(UniformGridIndex):
    """Uniform grid over a torus: opposite area edges are identified.

    Cell sizes are chosen per axis so the grid period equals the area
    exactly (otherwise wrapped cell indexes and wrapped distances would
    disagree near the seam), window enumeration wraps cell coordinates
    modulo the grid dimensions, and every distance uses the minimum-image
    convention.  Classification goes through the memo's drift bounds like
    the flat grid (the torus metric is 1-Lipschitz in node displacement, so
    the same conservative intervals apply); the flat grid's cell-rectangle
    pre-classification is not carried over.
    """

    def __init__(self, cell_m: float, slack_m: float, width_m: float, height_m: float):
        super().__init__(cell_m=cell_m, slack_m=slack_m)
        if width_m <= 0 or height_m <= 0:
            raise ValueError("torus dimensions must be positive")
        self.width_m = width_m
        self.height_m = height_m
        #: Cells per axis; cell sizes divide the area exactly.
        self._nx = max(1, int(width_m // cell_m))
        self._ny = max(1, int(height_m // cell_m))
        self._cell_x = width_m / self._nx
        self._cell_y = height_m / self._ny

    def _cell_key(self, x: float, y: float) -> Tuple[int, int]:
        # floor, not int(): truncation would bucket coordinates in
        # (-cell, 0) into cell 0 instead of the seam cell n-1, and the
        # window enumeration would miss in-range interferers there.
        return (
            math.floor(x / self._cell_x) % self._nx,
            math.floor(y / self._cell_y) % self._ny,
        )

    def _window(self, cx: int, cy: int, radius: float) -> List[Tuple[int, int, "Phy"]]:
        """Members of every cell within wrapped reach of cell ``(cx, cy)``."""
        key = (cx, cy, radius)
        cached = self._window_cache.get(key)
        if cached is not None:
            return cached
        reach = radius + self.memo.refresh_cap_m + self.slack_m
        nx, ny = self._nx, self._ny
        kx = int(reach / self._cell_x) + 1
        ky = int(reach / self._cell_y) + 1
        xs = range(nx) if 2 * kx + 1 >= nx else [(cx + j) % nx for j in range(-kx, kx + 1)]
        ys = range(ny) if 2 * ky + 1 >= ny else [(cy + j) % ny for j in range(-ky, ky + 1)]
        cells = self._cells
        out: List[Tuple[int, int, "Phy"]] = []
        for gx in xs:
            for gy in ys:
                bucket = cells.get((gx, gy))
                if bucket:
                    out.extend(bucket)
        out.sort()
        self._window_cache[key] = out
        return out

    def candidates(
        self, origin: Position, radius: float, now: float
    ) -> List[Tuple[int, int, "Phy"]]:
        self._ensure_current(now)
        cx, cy = self._cell_key(origin[0], origin[1])
        return self._window(cx, cy, radius)

    def interferers(
        self,
        sender: "Phy",
        origin: Position,
        cs_range: float,
        rx_range: float,
        now: float,
        out: Optional[List[Tuple[int, int, "Phy", bool]]] = None,
    ) -> List[Tuple[int, int, "Phy", bool]]:
        """Classified interference set under the minimum-image metric."""
        self._ensure_current(now)
        ox, oy = origin
        w, h = self.width_m, self.height_m
        cs_sq = cs_range * cs_range
        rx_sq = rx_range * rx_range
        memo = self.memo
        cx, cy = self._cell_key(ox, oy)
        window = self._window(cx, cy, cs_range)
        if out is None:
            out = []
        else:
            out.clear()
        append = out.append
        for order, node_id, phy in window:
            if phy is sender or not phy.enabled:
                continue
            position, drift = memo.bounded(node_id, now)
            dx = position[0] - ox
            dx -= w * round(dx / w)
            dy = position[1] - oy
            dy -= h * round(dy / h)
            distance_sq = dx * dx + dy * dy
            if drift > 0.0:
                in_cs = within_range(distance_sq, cs_range, drift)
                if in_cs is False:
                    continue
                in_range = within_range(distance_sq, rx_range, drift)
                if in_cs is None or in_range is None:
                    position = memo.exact(node_id, now)
                    dx = position[0] - ox
                    dx -= w * round(dx / w)
                    dy = position[1] - oy
                    dy -= h * round(dy / h)
                    distance_sq = dx * dx + dy * dy
                    if distance_sq > cs_sq:
                        continue
                    in_range = distance_sq <= rx_sq
            else:
                if distance_sq > cs_sq:
                    continue
                in_range = distance_sq <= rx_sq
            append((order, node_id, phy, in_range))
        return out


class LinearScanIndex:
    """The O(N) reference: every radio is a candidate, nothing is cached.

    This is the original medium semantics laid bare: every registered
    radio's position is interpolated on demand and every distance is
    computed, O(N) per query.  Kept selectable so the grid index can be
    proven equivalent against it -- on the flat rectangle and, via ``wrap``,
    on the torus (wrapped distances by brute force).
    """

    def __init__(self, wrap: Optional[Tuple[float, float]] = None):
        self._members: List[Tuple[int, int, "Phy"]] = []
        self._wrap = wrap

    def add(self, phy: "Phy") -> None:
        self._members.append((len(self._members), phy.node_id, phy))

    def invalidate(self, node_id: Optional[int] = None) -> None:
        """Nothing is cached, so there is nothing to invalidate."""

    def exact(self, phy: "Phy", now: float) -> Position:
        return phy.position(now)

    def bounded(self, phy: "Phy", now: float) -> Tuple[Position, float]:
        return phy.position(now), 0.0

    def candidates(
        self, origin: Position, radius: float, now: float
    ) -> List[Tuple[int, int, "Phy"]]:
        return self._members

    def interferers(
        self,
        sender: "Phy",
        origin: Position,
        cs_range: float,
        rx_range: float,
        now: float,
        out: Optional[List[Tuple[int, int, "Phy", bool]]] = None,
    ) -> List[Tuple[int, int, "Phy", bool]]:
        """Classified interference set, by exhaustive scan."""
        ox, oy = origin
        cs_sq = cs_range * cs_range
        rx_sq = rx_range * rx_range
        wrap = self._wrap
        if out is None:
            out = []
        else:
            out.clear()
        for order, node_id, phy in self._members:
            if phy is sender or not phy.enabled:
                continue
            position = phy.position(now)
            dx = position[0] - ox
            dy = position[1] - oy
            if wrap is not None:
                w, h = wrap
                dx -= w * round(dx / w)
                dy -= h * round(dy / h)
            distance_sq = dx * dx + dy * dy
            if distance_sq > cs_sq:
                continue
            out.append((order, node_id, phy, distance_sq <= rx_sq))
        return out

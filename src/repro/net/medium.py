"""The shared wireless medium.

The medium implements a unit-disk propagation model with collisions:

* A frame transmitted by node ``S`` occupies the channel for
  ``RadioConfig.airtime(size)`` seconds.
* Every node within the *carrier-sense range* of ``S`` senses the channel as
  busy for that interval.
* Every node within the *transmission range* of ``S`` receives the frame at
  the end of the interval **unless** the reception was corrupted, which
  happens when (a) another sensed transmission overlapped in time at that
  receiver, or (b) the receiver was itself transmitting (half-duplex radio).

This is the behaviour the paper depends on: finite bandwidth, spatial reuse,
and congestion-induced loss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.net.config import RadioConfig
from repro.net.packet import Frame
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.phy import Phy


@dataclass
class MediumStats:
    """Aggregate channel statistics."""

    transmissions: int = 0
    deliveries: int = 0
    collisions: int = 0
    out_of_range_discards: int = 0
    half_duplex_losses: int = 0


@dataclass
class _Reception:
    """An in-flight copy of a frame heading for one receiver."""

    receiver: "Phy"
    frame: Frame
    sender_id: int
    end_time: float
    in_range: bool
    corrupted: bool = False


@dataclass
class _Transmission:
    """An in-flight transmission occupying the channel."""

    sender: "Phy"
    frame: Frame
    start_time: float
    end_time: float
    receptions: List[_Reception] = field(default_factory=list)


class Medium:
    """The single shared wireless channel used by every node."""

    def __init__(self, sim: Simulator, config: Optional[RadioConfig] = None):
        self.sim = sim
        self.config = config or RadioConfig()
        self.stats = MediumStats()
        self._phys: Dict[int, "Phy"] = {}
        self._active: List[_Transmission] = []
        self._active_receptions: Dict[int, List[_Reception]] = {}

    # --------------------------------------------------------------- registry
    def register(self, phy: "Phy") -> None:
        """Attach a radio to the channel."""
        if phy.node_id in self._phys:
            raise ValueError(f"node {phy.node_id} already registered on this medium")
        self._phys[phy.node_id] = phy
        self._active_receptions[phy.node_id] = []

    @property
    def node_ids(self) -> List[int]:
        """Identifiers of every registered radio."""
        return sorted(self._phys)

    def phy_for(self, node_id: int) -> "Phy":
        """Return the radio registered for ``node_id``."""
        return self._phys[node_id]

    # --------------------------------------------------------------- geometry
    @staticmethod
    def _distance(a: tuple, b: tuple) -> float:
        return math.hypot(a[0] - b[0], a[1] - b[1])

    def distance_between(self, node_a: int, node_b: int) -> float:
        """Current euclidean distance between two nodes."""
        now = self.sim.now
        return self._distance(self._phys[node_a].position(now), self._phys[node_b].position(now))

    def neighbors_of(self, node_id: int) -> List[int]:
        """Node ids currently within transmission range of ``node_id``."""
        now = self.sim.now
        origin = self._phys[node_id].position(now)
        limit = self.config.transmission_range_m
        result = []
        for other_id, phy in self._phys.items():
            if other_id == node_id:
                continue
            if self._distance(origin, phy.position(now)) <= limit:
                result.append(other_id)
        return sorted(result)

    # ------------------------------------------------------------ busy sense
    def is_busy_for(self, phy: "Phy") -> bool:
        """Carrier sense: is the channel busy as perceived by ``phy``?"""
        if phy.transmitting:
            return True
        now = self.sim.now
        position = phy.position(now)
        cs_range = self.config.carrier_sense_range_m
        for tx in self._active:
            if tx.sender is phy:
                continue
            if tx.end_time <= now:
                continue
            if self._distance(position, tx.sender.position(tx.start_time)) <= cs_range:
                return True
        return False

    # ---------------------------------------------------------------- transmit
    def transmit(self, sender: "Phy", frame: Frame) -> float:
        """Start transmitting ``frame`` from ``sender``.

        Returns the airtime of the frame.  Reception outcomes are resolved
        when the transmission ends.
        """
        now = self.sim.now
        duration = self.config.airtime(frame.size_bytes)
        end_time = now + duration
        tx = _Transmission(sender=sender, frame=frame, start_time=now, end_time=end_time)
        self.stats.transmissions += 1

        sender_pos = sender.position(now)
        cs_range = self.config.carrier_sense_range_m
        rx_range = self.config.transmission_range_m

        # A node that starts transmitting corrupts anything it was receiving.
        for reception in self._active_receptions[sender.node_id]:
            if not reception.corrupted:
                reception.corrupted = True
                self.stats.half_duplex_losses += 1

        for node_id, phy in self._phys.items():
            if phy is sender:
                continue
            distance = self._distance(sender_pos, phy.position(now))
            if distance > cs_range:
                continue
            in_range = distance <= rx_range
            reception = _Reception(
                receiver=phy,
                frame=frame,
                sender_id=sender.node_id,
                end_time=end_time,
                in_range=in_range,
            )
            ongoing = self._active_receptions[node_id]
            if ongoing:
                # Overlapping energy at this receiver: everything is lost.
                for other in ongoing:
                    if not other.corrupted:
                        other.corrupted = True
                        self.stats.collisions += 1
                reception.corrupted = True
                self.stats.collisions += 1
            if phy.transmitting:
                reception.corrupted = True
                self.stats.half_duplex_losses += 1
            ongoing.append(reception)
            tx.receptions.append(reception)

        self._active.append(tx)
        self.sim.schedule(duration, self._finish_transmission, tx)
        return duration

    def _finish_transmission(self, tx: _Transmission) -> None:
        self._active.remove(tx)
        for reception in tx.receptions:
            receiver_id = reception.receiver.node_id
            self._active_receptions[receiver_id].remove(reception)
            if not reception.in_range:
                self.stats.out_of_range_discards += 1
                continue
            if reception.corrupted:
                continue
            if reception.receiver.transmitting:
                self.stats.half_duplex_losses += 1
                continue
            self.stats.deliveries += 1
            reception.receiver.deliver(reception.frame, reception.sender_id)
        tx.sender.transmission_finished()

"""The shared wireless medium.

The medium implements a unit-disk propagation model with collisions:

* A frame transmitted by node ``S`` occupies the channel for
  ``RadioConfig.airtime(size)`` seconds.
* Every node within the *carrier-sense range* of ``S`` senses the channel as
  busy for that interval.
* Every node within the *transmission range* of ``S`` receives the frame at
  the end of the interval **unless** the reception was corrupted, which
  happens when (a) another sensed transmission overlapped in time at that
  receiver, or (b) the receiver was itself transmitting (half-duplex radio).

This is the behaviour the paper depends on: finite bandwidth, spatial reuse,
and congestion-induced loss.

Snapshot semantics
------------------
All geometry of a transmission is evaluated **once, at transmission start**:
the set of radios in carrier-sense range (the interference set) and the
subset in reception range are frozen from the start-time positions.  Carrier
sense (:meth:`Medium.is_busy_for`) is membership in that frozen interference
set -- a radio senses the channel busy exactly when it holds an in-flight
copy -- so the channel can never present two inconsistent geometries for the
same frame, no matter how nodes move during the airtime.

Powered-down radios (``Phy.enabled == False``, used for failure injection)
are invisible to the channel: they appear in no interference set, receive no
frames, report an idle carrier and are excluded from ``neighbors_of``.  A
radio that powers up (or registers) while frames are in flight joins their
interference sets with corrupted copies -- it missed the head of each frame,
so it senses energy but can never decode.

Spatial index
-------------
Candidate receivers/interferers come from a pluggable spatial index
(:mod:`repro.net.spatial`): a uniform grid over memoised positions (O(k) per
transmission, the default) or a naive linear scan
(``RadioConfig(medium_index="naive")``).  Both produce bit-identical
statistics and delivery sequences; the naive index is kept as the reference
for equivalence tests.

The medium consumes one interface for static and moving senders alike:
``transmission_window`` returns the transmission's pre-classified
interference window -- cached against the sender's exact position while it
pauses and against its displacement-epoch anchor while it moves (see the
mobility motion-service contract) -- with only boundary members resolved per
call.

Fan-out kernels
---------------
A paper-scale run starts tens of thousands of transmissions, each fanning
out to every radio in carrier-sense range, so the per-reception bookkeeping
is the dominant hot path.  Two interchangeable kernels implement it,
selected by ``RadioConfig(fanout_kernel=...)``:

``"batch"`` (the default)
    One pooled :class:`ReceptionBatch` per transmission: the shared frame,
    parallel arrays of receiver radios / attach epochs, and one flag byte
    per copy packing the in-range bit with the attach-time **corruption
    bit** (set == receiver ``i``'s copy was undecodable on arrival; a
    bytearray keeps every flag read in small-int territory).  The fan-out
    loop fills the arrays in one pass over the index's window; teardown
    is one flat walk
    of the arrays dispatching straight into each radio's receive callback.
    The kernel exploits a structural property of the model: every hot
    corruption event (overlapping energy, the receiver starting to
    transmit, a power-down) corrupts *all* copies a radio currently holds,
    never a single one -- so per-radio corruption state is three O(1)
    counters on the :class:`~repro.net.phy.Phy` (held copies, still-
    decodable copies, and a corruption epoch whose bump means "everything
    this radio is hearing is now lost").  No per-copy record, list link or
    unlink exists anywhere on the hot path.

``"object"``
    The reference kernel: one pooled, slotted :class:`_Reception` record
    per in-flight copy, linked into per-node lists with intrusive slot
    indexes for O(1) removal.  Kept bit-identical to the batch kernel
    (proven on the hot-path goldens, including failure injection) exactly
    like the naive spatial index backs the grid.

Both kernels share the delivery fast paths: a receiver's MAC can opt in to
medium-side unicast filtering (``Phy.unicast_filter`` -- copies of unicast
frames addressed elsewhere are counted but never dispatched) and to a lean
broadcast entry point (``Phy.broadcast_callback``) that skips the
per-receiver address and ACK-type checks for ordinary broadcast traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, TYPE_CHECKING, Union

from repro.net.addressing import BROADCAST_ADDRESS
from repro.net.config import RadioConfig
from repro.net.packet import Frame
from repro.net.spatial import (
    LinearScanIndex,
    TorusGridIndex,
    UniformGridIndex,
    within_range,
)
from repro.obs import NULL_OBS
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.phy import Phy


@dataclass
class MediumStats:
    """Aggregate channel statistics."""

    transmissions: int = 0
    deliveries: int = 0
    collisions: int = 0
    out_of_range_discards: int = 0
    half_duplex_losses: int = 0
    disabled_discards: int = 0


class ReceptionBatch:
    """Every in-flight copy of one transmission, as parallel arrays.

    Slotted and pooled: the batch kernel recycles batches through a free
    list, so steady-state fan-out allocates nothing but list growth.  The
    receiver at index ``i`` has its attach-time verdicts in the flag byte
    ``flags[i]`` (:attr:`flags`) and the corruption epoch
    (``Phy.rx_corrupt_seq``) it attached under at ``seqs[i]``.  Copy ``i``
    is undecodable iff its corrupt flag is set *or* its receiver's epoch
    has moved since -- there is no per-copy record to link, walk or
    unlink anywhere.
    """

    __slots__ = ("sender", "frame", "start_time", "end_time", "sender_pos",
                 "receivers", "seqs", "flags", "count", "active_slot")

    #: Flag-byte bits (per copy, in :attr:`flags`).
    CORRUPT = 1   #: undecodable already at attach (overlap, half-duplex,
                  #: missed head, or a truncated frame after a sender crash)
    IN_RANGE = 2  #: receiver was within transmission (not just
                  #: carrier-sense) range at attach

    def __init__(self, sender: "Phy", frame: Frame, start_time: float,
                 end_time: float, sender_pos: tuple):
        self.sender = sender
        self.frame = frame
        self.start_time = start_time
        self.end_time = end_time
        self.sender_pos = sender_pos
        self.receivers: List["Phy"] = []
        #: Per-copy corruption epoch of the receiver at attach time.
        self.seqs: List[int] = []
        #: One flag byte per copy (``CORRUPT`` | ``IN_RANGE`` bits); a
        #: bytearray keeps every read and append in small-int territory --
        #: no wide-bitmap shifts anywhere on the hot path.
        self.flags = bytearray()
        self.count = 0
        #: Index in ``Medium._active`` (intrusive membership, O(1) removal).
        self.active_slot = -1


class _Reception:
    """An in-flight copy of a frame heading for one receiver (object kernel).

    Slotted and pooled: the medium recycles records through a free list, so
    steady-state transmission fan-out allocates nothing.  ``node_slot`` is
    the record's index in its receiver's ``_active_receptions`` list
    (intrusive membership), making end-of-flight removal an O(1) swap-pop.
    """

    __slots__ = ("receiver", "tx", "end_time", "in_range", "corrupted", "node_slot")

    def __init__(self, receiver: "Phy", tx: "_Transmission", end_time: float,
                 in_range: bool, corrupted: bool = False):
        self.receiver = receiver
        #: The transmission this copy belongs to; the shared frame and sender
        #: are read through it, so the per-receiver record stays small.
        self.tx = tx
        self.end_time = end_time
        self.in_range = in_range
        self.corrupted = corrupted
        self.node_slot = -1


class _Transmission:
    """An in-flight transmission occupying the channel (object kernel)."""

    __slots__ = ("sender", "frame", "start_time", "end_time", "sender_pos",
                 "receptions", "active_slot")

    def __init__(self, sender: "Phy", frame: Frame, start_time: float,
                 end_time: float, sender_pos: tuple):
        self.sender = sender
        self.frame = frame
        self.start_time = start_time
        self.end_time = end_time
        self.sender_pos = sender_pos
        self.receptions: List[_Reception] = []
        #: Index in ``Medium._active`` (intrusive membership, O(1) removal).
        self.active_slot = -1


class _ForeignSender:
    """Stand-in sender for a transmission imported from another shard.

    Cross-shard records carry only the sender's node id and start-time
    position; the real :class:`~repro.net.phy.Phy` lives in the originating
    worker.  The stub satisfies the slice of the sender interface the batch
    teardown touches -- identity comparisons against local radios always
    fail (so power transitions and late attaches never mistake it for a
    local sender) and the end-of-flight notification is a no-op (the
    originating shard runs the real MAC state machine).
    """

    __slots__ = ("node_id", "shard")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.shard = 0

    def transmission_finished(self) -> None:
        return None


class Medium:
    """The single shared wireless channel used by every node."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[RadioConfig] = None,
        obs=None,
        index_membership=None,
    ):
        self.sim = sim
        self.config = config or RadioConfig()
        self.stats = MediumStats()
        #: Delivery routing under the region-sharded sequential engine: with
        #: more than one shard configured *and* a sharded simulator driving
        #: the run, every delivery callback executes in the receiving
        #: radio's home-shard calendar (and the end-of-flight notification
        #: in the sender's).  ``None`` -- the common case -- costs one local
        #: ``is not None`` test per delivery.
        self._set_shard = (
            sim.set_shard if self.config.shards > 1 and sim.is_sharded else None
        )
        #: Cross-shard export mailbox (parallel shard workers only; see
        #: :mod:`repro.sim.shard`).  ``None`` keeps the hot path untouched;
        #: :meth:`enable_export` arms it, after which every transmission
        #: start and radio power-down appends one record.
        self._export: Optional[list] = None
        #: Counters of the foreign-record machinery (zero outside parallel
        #: shard workers); folded into the run's shard statistics.
        self.foreign_stats = {
            "attached": 0,
            "late_deliveries": 0,
            "truncated": 0,
            "sender_downs": 0,
        }
        #: Observability binding (see :mod:`repro.obs`).  Defaults to the
        #: shared no-op facade; probe sites below are additionally gated on
        #: one cached bool so the disabled hot path pays nothing.
        self.obs = obs if obs is not None else NULL_OBS
        self._obs_on = self.obs.enabled
        self._h_fanout = self.obs.histogram("medium.channel.fanout", reservoir=True)
        self._span_fanout = self.obs.span("medium.fanout")
        self._span_teardown = self.obs.span("medium.teardown")
        #: sender node_id -> total receptions fanned out (enabled mode only;
        #: feeds the report's top-N fan-out offenders).
        self._fanout_totals: Dict[int, int] = {}
        self._phys: Dict[int, "Phy"] = {}
        #: In-flight transmissions; ``ReceptionBatch`` or ``_Transmission``
        #: entries depending on the kernel (never mixed).
        self._active: list = []
        #: node_id -> that radio's ongoing-reception list (the same list
        #: object as ``phy._rx_ongoing``); a list of ``_Reception`` records.
        #: Object kernel only -- the batch kernel keeps no per-node lists
        #: (corruption state lives in per-radio counters on the phy), so
        #: these stay empty there.
        self._active_receptions: Dict[int, list] = {}
        self._airtime = self.config.airtime
        self._cs_range = self.config.carrier_sense_range_m
        self._rx_range = self.config.transmission_range_m
        # Free lists (see module docstring).
        self._batch_pool: List[ReceptionBatch] = []
        self._reception_pool: List[_Reception] = []
        self._transmission_pool: List[_Transmission] = []
        #: (width, height) of the periodic area, or ``None`` on the flat
        #: rectangle; every direct distance below applies the minimum-image
        #: convention when set.
        self._wrap = (
            (self.config.area_width_m, self.config.area_height_m)
            if self.config.area_topology == "torus"
            else None
        )
        self._index: Union[UniformGridIndex, LinearScanIndex]
        if self.config.medium_index == "grid":
            if self._wrap is not None:
                self._index = TorusGridIndex(
                    cell_m=self.config.grid_cell_m,
                    slack_m=self.config.grid_slack_m,
                    width_m=self._wrap[0],
                    height_m=self._wrap[1],
                    band_m=self.config.motion_band_m,
                    membership=index_membership,
                )
            else:
                self._index = UniformGridIndex(
                    cell_m=self.config.grid_cell_m,
                    slack_m=self.config.grid_slack_m,
                    band_m=self.config.motion_band_m,
                    membership=index_membership,
                )
        else:
            self._index = LinearScanIndex(
                wrap=self._wrap, membership=index_membership
            )
        #: Kernel dispatch: the two hot entry points are bound per instance
        #: so neither kernel pays a mode branch per call.
        self._batch_mode = self.config.fanout_kernel == "batch"
        if self._batch_mode:
            self.transmit = self._transmit_batch
        else:
            self.transmit = self._transmit_object

    # --------------------------------------------------------------- registry
    def register(self, phy: "Phy") -> None:
        """Attach a radio to the channel.

        Registering while frames are in flight is safe: the late joiner is
        attached to every transmission it can sense (with corrupted copies --
        it missed the heads of those frames) so carrier sense and collision
        accounting stay consistent with the snapshot semantics.
        """
        if phy.node_id in self._phys:
            raise ValueError(f"node {phy.node_id} already registered on this medium")
        self._phys[phy.node_id] = phy
        # One list per radio, shared by the registry dict (API surface,
        # tests) and the phy attribute (hot-path access).
        phy._rx_ongoing = bucket = []
        self._active_receptions[phy.node_id] = bucket
        self._index.add(phy)
        mobility = getattr(phy.node, "mobility", None)
        subscribe = getattr(mobility, "add_position_listener", None)
        if subscribe is not None:
            subscribe(lambda node_id=phy.node_id: self.positions_changed(node_id))
        if phy.enabled:
            self._attach_to_active(phy)

    @property
    def node_ids(self) -> List[int]:
        """Identifiers of every registered radio."""
        return sorted(self._phys)

    @property
    def spatial_index(self):
        """The medium's spatial index (read-only use: telemetry, censuses)."""
        return self._index

    def phy_for(self, node_id: int) -> "Phy":
        """Return the radio registered for ``node_id``."""
        return self._phys[node_id]

    def positions_changed(self, node_id: Optional[int] = None) -> None:
        """Invalidate cached geometry after a non-analytic position change.

        Mobility models that can teleport report jumps automatically through
        their position listeners; call this manually only when positions are
        mutated behind the mobility interface (e.g. ad-hoc test stubs).
        """
        self._index.invalidate(node_id)

    # --------------------------------------------------------------- geometry
    def _deltas(self, ax: float, ay: float, bx: float, by: float) -> tuple:
        """Coordinate deltas ``a - b``, wrapped on a torus topology."""
        dx = ax - bx
        dy = ay - by
        wrap = self._wrap
        if wrap is not None:
            w, h = wrap
            dx -= w * round(dx / w)
            dy -= h * round(dy / h)
        return dx, dy

    def _distance(self, a: tuple, b: tuple) -> float:
        dx, dy = self._deltas(a[0], a[1], b[0], b[1])
        return math.hypot(dx, dy)

    def distance_between(self, node_a: int, node_b: int) -> float:
        """Current distance between two nodes (wrapped on a torus)."""
        now = self.sim.now
        index = self._index
        return self._distance(
            index.exact(self._phys[node_a], now), index.exact(self._phys[node_b], now)
        )

    def neighbors_of(self, node_id: int) -> List[int]:
        """Enabled node ids currently within transmission range of ``node_id``.

        Powered-down radios neither have neighbours nor appear as one.
        """
        phy = self._phys[node_id]
        if not phy.enabled:
            return []
        now = self.sim.now
        limit = self._rx_range
        limit_sq = limit * limit
        origin = self._index.exact(phy, now)
        ox, oy = origin
        result = []
        for _, _, other in self._index.candidates(origin, limit, now):
            if other is phy or not other.enabled:
                continue
            if self._within(other, ox, oy, now, limit, limit_sq):
                result.append(other.node_id)
        return sorted(result)

    def _within(
        self, phy: "Phy", ox: float, oy: float, now: float, radius: float, radius_sq: float
    ) -> bool:
        """Exact test: is ``phy`` within ``radius`` of ``(ox, oy)`` at ``now``?"""
        index = self._index
        position, drift = index.bounded(phy, now)
        dx, dy = self._deltas(position[0], position[1], ox, oy)
        distance_sq = dx * dx + dy * dy
        if drift > 0.0:
            verdict = within_range(distance_sq, radius, drift)
            if verdict is not None:
                return verdict
            position = index.exact(phy, now)
            dx, dy = self._deltas(position[0], position[1], ox, oy)
            distance_sq = dx * dx + dy * dy
        return distance_sq <= radius_sq

    # ------------------------------------------------------------ busy sense
    def is_busy_for(self, phy: "Phy") -> bool:
        """Carrier sense: is the channel busy as perceived by ``phy``?

        Defined as membership in the interference set of any in-flight
        transmission (frozen at transmission start), so it always agrees
        with the reception bookkeeping.  A powered-down radio senses
        nothing.  O(1) in both kernels: copies are removed exactly at their
        end time, so "some held copy is still in flight" is equivalent to
        the radio's :attr:`~repro.net.phy.Phy.rx_busy_until` watermark
        lying in the future.
        """
        if not phy.enabled:
            return False
        if phy.transmitting:
            return True
        return phy.rx_busy_until > self.sim.now

    # ---------------------------------------------------------- batch kernel
    def _transmit_batch(self, sender: "Phy", frame: Frame) -> float:
        """Start transmitting ``frame`` from ``sender`` (batch kernel).

        Returns the airtime of the frame.  Reception outcomes are resolved
        when the transmission ends; all geometry is frozen now, at start.
        """
        now = self.sim.now
        duration = self._airtime(frame.size_bytes)
        end_time = now + duration
        index = self._index
        sender_pos = index.exact(sender, now)
        pool = self._batch_pool
        if pool:
            batch = pool.pop()
            batch.sender = sender
            batch.frame = frame
            batch.start_time = now
            batch.end_time = end_time
            batch.sender_pos = sender_pos
        else:
            batch = ReceptionBatch(sender, frame, now, end_time, sender_pos)
        stats = self.stats
        stats.transmissions += 1

        # A node that starts transmitting corrupts anything it was receiving:
        # one epoch bump, no walk.
        lost = sender.rx_uncorrupted
        if lost:
            stats.half_duplex_losses += lost
            sender.rx_uncorrupted = 0
        sender.rx_corrupt_seq += 1

        obs_on = self._obs_on
        if obs_on:
            self._span_fanout.start()
        receivers = batch.receivers
        receivers_append = receivers.append
        seqs_append = batch.seqs.append
        flags_append = batch.flags.append
        collisions = 0
        half_duplex = 0
        # The window comes pre-classified from the index's per-sender caches
        # (exact-point windows for paused senders, displacement-epoch anchor
        # windows for moving ones); only boundary members near a verdict
        # deadline were resolved for this call.  It never contains the
        # sender, but may contain disabled radios and members that resolved
        # beyond carrier sense (verdict None) -- filtering here avoids
        # materialising a second, filtered list per transmission.
        for member in index.transmission_window(
            sender, sender_pos, self._cs_range, self._rx_range, now
        ):
            phy = member[2]
            if not phy.enabled:
                continue
            in_range = member[3]
            if in_range is None:
                continue
            held = phy.rx_held_count
            if held:
                # Overlapping energy at this receiver: everything it holds
                # is lost (epoch bump), and so is the new copy.
                uncorrupted = phy.rx_uncorrupted
                if uncorrupted:
                    collisions += uncorrupted
                    phy.rx_uncorrupted = 0
                phy.rx_corrupt_seq += 1
                collisions += 1
                copy_flags = 3 if in_range else 1
                if phy.transmitting:
                    half_duplex += 1
            elif phy.transmitting:
                copy_flags = 3 if in_range else 1
                half_duplex += 1
            else:
                phy.rx_uncorrupted += 1
                copy_flags = 2 if in_range else 0
            phy.rx_held_count = held + 1
            if end_time > phy.rx_busy_until:
                phy.rx_busy_until = end_time
            seqs_append(phy.rx_corrupt_seq)
            receivers_append(phy)
            flags_append(copy_flags)
        count = len(receivers)
        batch.count = count
        if collisions:
            stats.collisions += collisions
        if half_duplex:
            stats.half_duplex_losses += half_duplex
        if obs_on:
            self._span_fanout.stop()
            self._h_fanout.observe(count)
            totals = self._fanout_totals
            sender_id = sender.node_id
            totals[sender_id] = totals.get(sender_id, 0) + count

        batch.active_slot = len(self._active)
        self._active.append(batch)
        self.sim.call_in(duration, self._finish_batch, (batch,))
        if self._export is not None:
            self._export.append(
                ("tx", now, sender.node_id, end_time, sender_pos[0], sender_pos[1], frame)
            )
        return duration

    def _finish_batch(self, batch: ReceptionBatch) -> None:
        # O(1) intrusive removal from the in-flight list.
        active = self._active
        tail = active.pop()
        if tail is not batch:
            slot = batch.active_slot
            active[slot] = tail
            tail.active_slot = slot
        stats = self.stats
        obs_on = self._obs_on
        if obs_on:
            self._span_teardown.start()
        frame = batch.frame
        sender = batch.sender
        sender_id = sender.node_id
        dst = frame.dst
        broadcast = dst == BROADCAST_ADDRESS
        # Ordinary broadcast traffic (everything but a broadcast MAC ACK,
        # which no stack sends but tests may craft) dispatches through the
        # receivers' lean broadcast entry point where one is registered.
        fast_broadcast = broadcast and not frame.packet.is_mac_control
        receivers = batch.receivers
        seqs = batch.seqs
        # The attach-time flag bytes are stable during teardown (sender
        # crashes mutate them only while the batch is still in ``_active``);
        # epoch corruption is read per copy below, so a callback that powers
        # a radio down mid-teardown is seen by the copies still pending --
        # exactly like the object kernel's per-record reads.
        flags = batch.flags
        set_shard = self._set_shard
        disabled_discards = 0
        out_of_range = 0
        half_duplex = 0
        deliveries = 0
        # zip over the parallel arrays: no per-copy index arithmetic.
        for receiver, f, seq in zip(receivers, flags, seqs):
            receiver.rx_held_count -= 1
            if f & 1 or receiver.rx_corrupt_seq != seq:
                if receiver.enabled:
                    if f & 2:
                        continue
                    out_of_range += 1
                else:
                    disabled_discards += 1
                continue
            receiver.rx_uncorrupted -= 1
            if not receiver.enabled:
                disabled_discards += 1
                continue
            if not f & 2:
                out_of_range += 1
                continue
            if receiver.transmitting:
                half_duplex += 1
                continue
            deliveries += 1
            if broadcast:
                if fast_broadcast:
                    callback = receiver.broadcast_callback
                    if callback is None:
                        callback = receiver.receive_callback
                else:
                    callback = receiver.receive_callback
            elif receiver.unicast_filter and dst != receiver.node_id:
                # The copy arrived intact (counted above) but the MAC would
                # discard it unread -- skip the dispatch entirely.
                continue
            else:
                callback = receiver.receive_callback
            if callback is not None:
                if set_shard is not None:
                    # Sharded engine: whatever the callback schedules lands
                    # in the receiving radio's home-shard calendar.
                    set_shard(receiver.shard)
                callback(frame, sender_id)
        if disabled_discards:
            stats.disabled_discards += disabled_discards
        if out_of_range:
            stats.out_of_range_discards += out_of_range
        if half_duplex:
            stats.half_duplex_losses += half_duplex
        stats.deliveries += deliveries
        # Recycle: the arrays stay attached to the pooled batch.  Receiver
        # refs are cleared with them, so a pooled batch pins nothing.
        receivers.clear()
        seqs.clear()
        flags.clear()
        batch.count = 0
        batch.sender = None
        batch.frame = None
        self._batch_pool.append(batch)
        if obs_on:
            # Includes upper-layer dispatch: the span covers everything a
            # frame's end-of-airtime costs, which is what the phase
            # breakdown is for.
            self._span_teardown.stop()
        if set_shard is not None:
            set_shard(sender.shard)
        sender.transmission_finished()

    # --------------------------------------------------------- object kernel
    def _transmit_object(self, sender: "Phy", frame: Frame) -> float:
        """Start transmitting ``frame`` from ``sender`` (object kernel).

        Returns the airtime of the frame.  Reception outcomes are resolved
        when the transmission ends; all geometry is frozen now, at start.
        """
        now = self.sim.now
        duration = self._airtime(frame.size_bytes)
        end_time = now + duration
        index = self._index
        sender_pos = index.exact(sender, now)
        tpool = self._transmission_pool
        if tpool:
            tx = tpool.pop()
            tx.sender = sender
            tx.frame = frame
            tx.start_time = now
            tx.end_time = end_time
            tx.sender_pos = sender_pos
        else:
            tx = _Transmission(sender, frame, now, end_time, sender_pos)
        stats = self.stats
        stats.transmissions += 1

        # A node that starts transmitting corrupts anything it was receiving.
        for reception in sender._rx_ongoing:
            if not reception.corrupted:
                reception.corrupted = True
                stats.half_duplex_losses += 1

        obs_on = self._obs_on
        if obs_on:
            self._span_fanout.start()
        pool = self._reception_pool
        receptions = tx.receptions
        rec_append = receptions.append
        collisions = 0
        half_duplex = 0
        # See _transmit_batch for the window contract.
        for member in index.transmission_window(
            sender, sender_pos, self._cs_range, self._rx_range, now
        ):
            phy = member[2]
            if not phy.enabled:
                continue
            in_range = member[3]
            if in_range is None:
                continue
            if pool:
                reception = pool.pop()
                reception.receiver = phy
                reception.tx = tx
                reception.end_time = end_time
                reception.in_range = in_range
                reception.corrupted = False
            else:
                reception = _Reception(phy, tx, end_time, in_range)
            ongoing = phy._rx_ongoing
            if ongoing:
                # Overlapping energy at this receiver: everything is lost.
                for other in ongoing:
                    if not other.corrupted:
                        other.corrupted = True
                        collisions += 1
                reception.corrupted = True
                collisions += 1
                reception.node_slot = len(ongoing)
            else:
                reception.node_slot = 0
            if phy.transmitting:
                reception.corrupted = True
                half_duplex += 1
            if end_time > phy.rx_busy_until:
                phy.rx_busy_until = end_time
            ongoing.append(reception)
            rec_append(reception)
        if collisions:
            stats.collisions += collisions
        if half_duplex:
            stats.half_duplex_losses += half_duplex
        if obs_on:
            self._span_fanout.stop()
            fanout = len(receptions)
            self._h_fanout.observe(fanout)
            totals = self._fanout_totals
            sender_id = sender.node_id
            totals[sender_id] = totals.get(sender_id, 0) + fanout

        tx.active_slot = len(self._active)
        self._active.append(tx)
        self.sim.call_in(duration, self._finish_transmission, (tx,))
        return duration

    def _finish_transmission(self, tx: _Transmission) -> None:
        # O(1) intrusive removal from the in-flight list.
        active = self._active
        tail = active.pop()
        if tail is not tx:
            slot = tx.active_slot
            active[slot] = tail
            tail.active_slot = slot
        stats = self.stats
        obs_on = self._obs_on
        if obs_on:
            self._span_teardown.start()
        pool_append = self._reception_pool.append
        frame = tx.frame
        sender_id = tx.sender.node_id
        dst = frame.dst
        broadcast = dst == BROADCAST_ADDRESS
        fast_broadcast = broadcast and not frame.packet.is_mac_control
        set_shard = self._set_shard
        disabled_discards = 0
        out_of_range = 0
        half_duplex = 0
        deliveries = 0
        for reception in tx.receptions:
            receiver = reception.receiver
            # O(1) intrusive removal: swap the list tail into this record's
            # slot (per-node reception lists are order-insensitive).
            ongoing = receiver._rx_ongoing
            last = ongoing.pop()
            if last is not reception:
                slot = reception.node_slot
                ongoing[slot] = last
                last.node_slot = slot
            # Capture the outcome fields, then recycle the record before the
            # delivery callback: everything below uses the locals, so even a
            # callback that pops the pool cannot clash with this record.
            # The receiver/tx refs are left in place -- pooled records hold
            # them until reuse overwrites them, which pins only long-lived
            # objects (phys, pooled transmissions).
            in_range = reception.in_range
            corrupted = reception.corrupted
            pool_append(reception)
            if not receiver.enabled:
                disabled_discards += 1
                continue
            if not in_range:
                out_of_range += 1
                continue
            if corrupted:
                continue
            if receiver.transmitting:
                half_duplex += 1
                continue
            deliveries += 1
            if broadcast:
                if fast_broadcast:
                    callback = receiver.broadcast_callback
                    if callback is None:
                        callback = receiver.receive_callback
                else:
                    callback = receiver.receive_callback
            elif receiver.unicast_filter and dst != receiver.node_id:
                # Intact but addressed elsewhere: counted, never dispatched.
                continue
            else:
                callback = receiver.receive_callback
            if callback is not None:
                if set_shard is not None:
                    # See _finish_batch: route into the receiver's shard.
                    set_shard(receiver.shard)
                callback(frame, sender_id)
        if disabled_discards:
            stats.disabled_discards += disabled_discards
        if out_of_range:
            stats.out_of_range_discards += out_of_range
        if half_duplex:
            stats.half_duplex_losses += half_duplex
        stats.deliveries += deliveries
        tx.receptions.clear()
        sender = tx.sender
        tx.sender = None
        tx.frame = None
        self._transmission_pool.append(tx)
        if obs_on:
            # Includes upper-layer dispatch: the span covers everything a
            # frame's end-of-airtime costs, which is what the phase
            # breakdown is for.
            self._span_teardown.stop()
        if set_shard is not None:
            set_shard(sender.shard)
        sender.transmission_finished()

    # ------------------------------------------------------- power transitions
    def radio_powered_down(self, phy: "Phy") -> None:
        """A radio went down mid-flight: it stops receiving *and* radiating.

        Its pending incoming copies can never decode, and any transmission it
        had on the air is truncated, so every receiver's copy of that frame
        is undecodable too.  All copies are marked corrupted without counting
        a collision: a dead radio stops inflating ``deliveries`` and
        ``collisions``.
        """
        now = self.sim.now
        if self._export is not None:
            # Tell the other shards: their copies of any frame this radio
            # still had on the air are truncated too.
            self._export.append(("down", now, phy.node_id))
        if self._batch_mode:
            # Everything this radio holds is lost: one epoch bump.
            phy.rx_corrupt_seq += 1
            phy.rx_uncorrupted = 0
            for batch in self._active:
                if batch.sender is phy and batch.end_time > now:
                    # Truncated frame: every copy in the batch is lost.
                    # Settle each still-decodable copy out of its receiver's
                    # uncorrupted count before the flag swallows it.
                    receivers = batch.receivers
                    seqs = batch.seqs
                    flags = batch.flags
                    for idx in range(batch.count):
                        receiver = receivers[idx]
                        if (
                            not flags[idx] & 1
                            and receiver.rx_corrupt_seq == seqs[idx]
                        ):
                            receiver.rx_uncorrupted -= 1
                        flags[idx] |= 1
        else:
            for reception in self._active_receptions.get(phy.node_id, ()):
                reception.corrupted = True
            for tx in self._active:
                if tx.sender is phy and tx.end_time > now:
                    for reception in tx.receptions:
                        reception.corrupted = True

    def radio_powered_up(self, phy: "Phy") -> None:
        """A radio came (back) up: attach it to every in-flight transmission."""
        self._attach_to_active(phy)

    def _attach_to_active(self, phy: "Phy") -> None:
        """Give ``phy`` corrupted copies of every transmission it can sense.

        Used for radios that register or power up mid-flight: they missed
        the head of each frame, so they sense energy (and participate in
        collision bookkeeping) but can never decode the frame itself.
        """
        if not self._active:
            return
        now = self.sim.now
        position = self._index.exact(phy, now)
        cs_range = self._cs_range
        rx_range = self._rx_range
        cs_sq = cs_range * cs_range
        rx_sq = rx_range * rx_range
        if self._batch_mode:
            for batch in self._active:
                if batch.sender is phy or batch.end_time <= now:
                    continue
                # A power cycle inside one airtime must not attach a second
                # copy of a transmission the radio already holds (from before
                # it went down) -- duplicates would double-count the discard
                # statistics.
                receivers = batch.receivers
                if any(
                    receivers[idx] is phy for idx in range(batch.count)
                ):
                    continue
                dx, dy = self._deltas(
                    batch.sender_pos[0], batch.sender_pos[1], position[0], position[1]
                )
                distance_sq = dx * dx + dy * dy
                if distance_sq > cs_sq:
                    continue
                receivers.append(phy)
                batch.seqs.append(phy.rx_corrupt_seq)
                batch.flags.append(3 if distance_sq <= rx_sq else 1)
                batch.count += 1
                phy.rx_held_count += 1
                if batch.end_time > phy.rx_busy_until:
                    phy.rx_busy_until = batch.end_time
        else:
            ongoing = self._active_receptions[phy.node_id]
            for tx in self._active:
                if tx.sender is phy or tx.end_time <= now:
                    continue
                # See the batch branch for the duplicate-copy guard.
                if any(reception.tx is tx for reception in ongoing):
                    continue
                dx, dy = self._deltas(
                    tx.sender_pos[0], tx.sender_pos[1], position[0], position[1]
                )
                distance_sq = dx * dx + dy * dy
                if distance_sq > cs_sq:
                    continue
                reception = _Reception(
                    phy,
                    tx,
                    tx.end_time,
                    distance_sq <= rx_sq,
                    corrupted=True,
                )
                reception.node_slot = len(ongoing)
                if tx.end_time > phy.rx_busy_until:
                    phy.rx_busy_until = tx.end_time
                ongoing.append(reception)
                tx.receptions.append(reception)

    # ------------------------------------------------- cross-shard mailboxes
    # The parallel region-sharded engine (see :mod:`repro.sim.shard`) runs
    # one full scenario per shard with foreign radios disabled.  Each worker
    # exports a record per transmission start ("tx") and per radio crash
    # ("down"); at every conservative sync boundary the driver redistributes
    # the records and each worker applies the foreign ones here.  A foreign
    # transmission still in flight joins the local collision machinery
    # exactly like a local one (snapshot semantics, with geometry evaluated
    # at apply time); one that already ended -- the common case whenever the
    # sync window exceeds an airtime -- is delivered directly ("late"),
    # skipping interference it can no longer physically cause.  This is the
    # documented approximation of the parallel modes; the sequential sharded
    # engine needs none of it and stays bit-exact.

    def enable_export(self) -> None:
        """Arm the cross-shard export mailbox (parallel shard workers)."""
        if self._export is None:
            self._export = []

    def drain_export(self) -> list:
        """Return and clear the records accumulated since the last drain."""
        records = self._export
        if records is None:
            return []
        self._export = []
        return records

    def apply_foreign_records(self, records: list) -> None:
        """Apply one sync window's worth of other shards' channel records.

        ``records`` must arrive sorted by ``(time, node_id, tag)`` -- the
        driver sorts the union of all foreign outboxes, so every worker
        applies the same records in the same order (this is what makes the
        in-process and multi-process parallel modes bit-identical).
        """
        now = self.sim.now
        downs: Dict[int, list] = {}
        for record in records:
            if record[0] == "down":
                downs.setdefault(record[2], []).append(record[1])
        foreign = self.foreign_stats
        for record in records:
            if record[0] == "tx":
                _, start, sender_id, end_time, sx, sy, frame = record
                if end_time > now:
                    self.attach_foreign(sender_id, end_time, sx, sy, frame)
                    foreign["attached"] += 1
                elif any(start < at < end_time for at in downs.get(sender_id, ())):
                    # The sender crashed mid-flight: the frame was truncated
                    # everywhere, including here.
                    foreign["truncated"] += 1
                else:
                    self._deliver_foreign_late(sender_id, sx, sy, frame)
                    foreign["late_deliveries"] += 1
            else:
                self.foreign_sender_down(record[2])
                foreign["sender_downs"] += 1

    def attach_foreign(
        self, sender_id: int, end_time: float, sx: float, sy: float, frame: Frame
    ) -> None:
        """Attach a still-in-flight foreign transmission to local radios.

        Mirrors the batch kernel's fan-out (held-copy collisions, half-duplex
        verdicts, busy-watermark updates) over the local index's candidates
        around the exported start position; the shared ``_finish_batch``
        teardown then resolves the receptions at ``end_time``.  The
        transmission itself is *not* counted -- the originating shard owns
        ``stats.transmissions``.
        """
        if not self._batch_mode:
            raise RuntimeError("cross-shard attach requires the batch fan-out kernel")
        now = self.sim.now
        sender_pos = (sx, sy)
        pool = self._batch_pool
        sender = _ForeignSender(sender_id)
        if pool:
            batch = pool.pop()
            batch.sender = sender
            batch.frame = frame
            batch.start_time = now
            batch.end_time = end_time
            batch.sender_pos = sender_pos
        else:
            batch = ReceptionBatch(sender, frame, now, end_time, sender_pos)
        stats = self.stats
        index = self._index
        cs_range = self._cs_range
        cs_sq = cs_range * cs_range
        rx_sq = self._rx_range * self._rx_range
        receivers = batch.receivers
        receivers_append = receivers.append
        seqs_append = batch.seqs.append
        flags_append = batch.flags.append
        collisions = 0
        half_duplex = 0
        for _, _, phy in index.candidates(sender_pos, cs_range, now):
            if not phy.enabled:
                continue
            px, py = index.exact(phy, now)
            dx, dy = self._deltas(px, py, sx, sy)
            distance_sq = dx * dx + dy * dy
            if distance_sq > cs_sq:
                continue
            in_range = distance_sq <= rx_sq
            held = phy.rx_held_count
            if held:
                uncorrupted = phy.rx_uncorrupted
                if uncorrupted:
                    collisions += uncorrupted
                    phy.rx_uncorrupted = 0
                phy.rx_corrupt_seq += 1
                collisions += 1
                copy_flags = 3 if in_range else 1
                if phy.transmitting:
                    half_duplex += 1
            elif phy.transmitting:
                copy_flags = 3 if in_range else 1
                half_duplex += 1
            else:
                phy.rx_uncorrupted += 1
                copy_flags = 2 if in_range else 0
            phy.rx_held_count = held + 1
            if end_time > phy.rx_busy_until:
                phy.rx_busy_until = end_time
            seqs_append(phy.rx_corrupt_seq)
            receivers_append(phy)
            flags_append(copy_flags)
        batch.count = len(receivers)
        if collisions:
            stats.collisions += collisions
        if half_duplex:
            stats.half_duplex_losses += half_duplex
        batch.active_slot = len(self._active)
        self._active.append(batch)
        self.sim.call_at(end_time, self._finish_batch, (batch,))

    def _deliver_foreign_late(
        self, sender_id: int, sx: float, sy: float, frame: Frame
    ) -> None:
        """Deliver a foreign transmission that ended before this boundary.

        The frame's airtime lies entirely in the past, so it can no longer
        occupy the channel or collide with anything local; receivers in
        transmission range of the exported start position simply receive it
        now, through the same dispatch fast paths as a live teardown.
        """
        now = self.sim.now
        dst = frame.dst
        broadcast = dst == BROADCAST_ADDRESS
        fast_broadcast = broadcast and not frame.packet.is_mac_control
        index = self._index
        rx_range = self._rx_range
        rx_sq = rx_range * rx_range
        half_duplex = 0
        deliveries = 0
        for _, _, receiver in index.candidates((sx, sy), rx_range, now):
            if not receiver.enabled:
                continue
            px, py = index.exact(receiver, now)
            dx, dy = self._deltas(px, py, sx, sy)
            if dx * dx + dy * dy > rx_sq:
                continue
            if receiver.transmitting:
                half_duplex += 1
                continue
            deliveries += 1
            if broadcast:
                if fast_broadcast:
                    callback = receiver.broadcast_callback
                    if callback is None:
                        callback = receiver.receive_callback
                else:
                    callback = receiver.receive_callback
            elif receiver.unicast_filter and dst != receiver.node_id:
                continue
            else:
                callback = receiver.receive_callback
            if callback is not None:
                callback(frame, sender_id)
        stats = self.stats
        if half_duplex:
            stats.half_duplex_losses += half_duplex
        stats.deliveries += deliveries

    def foreign_sender_down(self, sender_id: int) -> None:
        """A foreign sender crashed: truncate its in-flight attached frames.

        The local mirror of the sender-crash branch of
        :meth:`radio_powered_down`, keyed by node id because the sender's
        radio object lives in another worker.
        """
        now = self.sim.now
        for batch in self._active:
            sender = batch.sender
            if (
                type(sender) is _ForeignSender
                and sender.node_id == sender_id
                and batch.end_time > now
            ):
                receivers = batch.receivers
                seqs = batch.seqs
                flags = batch.flags
                for idx in range(batch.count):
                    receiver = receivers[idx]
                    if (
                        not flags[idx] & 1
                        and receiver.rx_corrupt_seq == seqs[idx]
                    ):
                        receiver.rx_uncorrupted -= 1
                    flags[idx] |= 1

    # --------------------------------------------------------------- telemetry
    def receptions_for(self, node_id: int) -> List[tuple]:
        """In-flight copies heading for ``node_id``, kernel-independently.

        Returns ``(sender_id, end_time, in_range, corrupted)`` tuples -- the
        stable view for tests and tools, regardless of whether the kernel
        keeps per-copy records or batch arrays plus per-radio counters
        underneath.  Tuple order is unspecified.
        """
        out = []
        if self._batch_mode:
            phy = self._phys.get(node_id)
            if phy is None:
                return out
            for batch in self._active:
                receivers = batch.receivers
                seqs = batch.seqs
                flags = batch.flags
                for idx in range(batch.count):
                    if receivers[idx] is not phy:
                        continue
                    f = flags[idx]
                    out.append(
                        (
                            batch.sender.node_id,
                            batch.end_time,
                            bool(f & 2),
                            bool(f & 1 or phy.rx_corrupt_seq != seqs[idx]),
                        )
                    )
        else:
            for reception in self._active_receptions.get(node_id, ()):
                out.append(
                    (
                        reception.tx.sender.node_id,
                        reception.end_time,
                        reception.in_range,
                        reception.corrupted,
                    )
                )
        return out

    def top_fanout(self, n: int = 10) -> List[tuple]:
        """Worst fan-out offenders: ``(sender, total receptions)``, top ``n``.

        Tracked only while observability is enabled; empty otherwise.
        """
        return sorted(
            self._fanout_totals.items(), key=lambda item: (-item[1], item[0])
        )[:n]

    def publish_index_metrics(self) -> None:
        """Copy the spatial index's counters into the ``spatial.index.*``
        telemetry names (no-op with observability disabled)."""
        if not self._obs_on:
            return
        index = self._index
        self.obs.registry.set_metrics(
            [
                ("spatial.index.window_hits", index.window_hits),
                ("spatial.index.window_builds", index.window_builds),
                ("spatial.index.window_patch_hits", index.window_patch_hits),
                ("spatial.index.grid_rebuilds", index.grid_rebuilds),
            ]
        )

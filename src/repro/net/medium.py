"""The shared wireless medium.

The medium implements a unit-disk propagation model with collisions:

* A frame transmitted by node ``S`` occupies the channel for
  ``RadioConfig.airtime(size)`` seconds.
* Every node within the *carrier-sense range* of ``S`` senses the channel as
  busy for that interval.
* Every node within the *transmission range* of ``S`` receives the frame at
  the end of the interval **unless** the reception was corrupted, which
  happens when (a) another sensed transmission overlapped in time at that
  receiver, or (b) the receiver was itself transmitting (half-duplex radio).

This is the behaviour the paper depends on: finite bandwidth, spatial reuse,
and congestion-induced loss.

Snapshot semantics
------------------
All geometry of a transmission is evaluated **once, at transmission start**:
the set of radios in carrier-sense range (the interference set) and the
subset in reception range are frozen from the start-time positions.  Carrier
sense (:meth:`Medium.is_busy_for`) is membership in that frozen interference
set -- a radio senses the channel busy exactly when it holds an in-flight
:class:`_Reception` -- so the channel can never present two inconsistent
geometries for the same frame, no matter how nodes move during the airtime.

Powered-down radios (``Phy.enabled == False``, used for failure injection)
are invisible to the channel: they appear in no interference set, receive no
frames, report an idle carrier and are excluded from ``neighbors_of``.  A
radio that powers up (or registers) while frames are in flight joins their
interference sets with corrupted copies -- it missed the head of each frame,
so it senses energy but can never decode.

Spatial index
-------------
Candidate receivers/interferers come from a pluggable spatial index
(:mod:`repro.net.spatial`): a uniform grid over memoised positions (O(k) per
transmission, the default) or a naive linear scan
(``RadioConfig(medium_index="naive")``).  Both produce bit-identical
statistics and delivery sequences; the naive index is kept as the reference
for equivalence tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Union

from repro.net.config import RadioConfig
from repro.net.packet import Frame
from repro.net.spatial import LinearScanIndex, UniformGridIndex, within_range
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.phy import Phy


@dataclass
class MediumStats:
    """Aggregate channel statistics."""

    transmissions: int = 0
    deliveries: int = 0
    collisions: int = 0
    out_of_range_discards: int = 0
    half_duplex_losses: int = 0
    disabled_discards: int = 0


# eq=False: receptions/transmissions are removed from hot lists by identity;
# the generated field-wise __eq__ would turn every list.remove into a deep
# comparison of frames and radios.
@dataclass(eq=False)
class _Reception:
    """An in-flight copy of a frame heading for one receiver."""

    receiver: "Phy"
    receiver_id: int
    frame: Frame
    sender_id: int
    end_time: float
    in_range: bool
    corrupted: bool = False
    #: Index of this record in its receiver's ``_active_receptions`` list
    #: (intrusive membership), so removal at end-of-flight is O(1) swap-pop
    #: instead of a linear scan.
    node_slot: int = -1


@dataclass(eq=False)
class _Transmission:
    """An in-flight transmission occupying the channel."""

    sender: "Phy"
    frame: Frame
    start_time: float
    end_time: float
    sender_pos: tuple = (0.0, 0.0)
    receptions: List[_Reception] = field(default_factory=list)


class Medium:
    """The single shared wireless channel used by every node."""

    def __init__(self, sim: Simulator, config: Optional[RadioConfig] = None):
        self.sim = sim
        self.config = config or RadioConfig()
        self.stats = MediumStats()
        self._phys: Dict[int, "Phy"] = {}
        self._active: List[_Transmission] = []
        self._active_receptions: Dict[int, List[_Reception]] = {}
        self._index: Union[UniformGridIndex, LinearScanIndex]
        if self.config.medium_index == "grid":
            self._index = UniformGridIndex(
                cell_m=self.config.grid_cell_m, slack_m=self.config.grid_slack_m
            )
        else:
            self._index = LinearScanIndex()

    # --------------------------------------------------------------- registry
    def register(self, phy: "Phy") -> None:
        """Attach a radio to the channel.

        Registering while frames are in flight is safe: the late joiner is
        attached to every transmission it can sense (with corrupted copies --
        it missed the heads of those frames) so carrier sense and collision
        accounting stay consistent with the snapshot semantics.
        """
        if phy.node_id in self._phys:
            raise ValueError(f"node {phy.node_id} already registered on this medium")
        self._phys[phy.node_id] = phy
        self._active_receptions[phy.node_id] = []
        self._index.add(phy)
        mobility = getattr(phy.node, "mobility", None)
        subscribe = getattr(mobility, "add_position_listener", None)
        if subscribe is not None:
            subscribe(lambda node_id=phy.node_id: self.positions_changed(node_id))
        if phy.enabled:
            self._attach_to_active(phy)

    @property
    def node_ids(self) -> List[int]:
        """Identifiers of every registered radio."""
        return sorted(self._phys)

    def phy_for(self, node_id: int) -> "Phy":
        """Return the radio registered for ``node_id``."""
        return self._phys[node_id]

    def positions_changed(self, node_id: Optional[int] = None) -> None:
        """Invalidate cached geometry after a non-analytic position change.

        Mobility models that can teleport report jumps automatically through
        their position listeners; call this manually only when positions are
        mutated behind the mobility interface (e.g. ad-hoc test stubs).
        """
        self._index.invalidate(node_id)

    # --------------------------------------------------------------- geometry
    @staticmethod
    def _distance(a: tuple, b: tuple) -> float:
        return math.hypot(a[0] - b[0], a[1] - b[1])

    def distance_between(self, node_a: int, node_b: int) -> float:
        """Current euclidean distance between two nodes."""
        now = self.sim.now
        index = self._index
        return self._distance(
            index.exact(self._phys[node_a], now), index.exact(self._phys[node_b], now)
        )

    def neighbors_of(self, node_id: int) -> List[int]:
        """Enabled node ids currently within transmission range of ``node_id``.

        Powered-down radios neither have neighbours nor appear as one.
        """
        phy = self._phys[node_id]
        if not phy.enabled:
            return []
        now = self.sim.now
        limit = self.config.transmission_range_m
        limit_sq = limit * limit
        origin = self._index.exact(phy, now)
        ox, oy = origin
        result = []
        for _, _, other in self._index.candidates(origin, limit, now):
            if other is phy or not other.enabled:
                continue
            if self._within(other, ox, oy, now, limit, limit_sq):
                result.append(other.node_id)
        return sorted(result)

    def _within(
        self, phy: "Phy", ox: float, oy: float, now: float, radius: float, radius_sq: float
    ) -> bool:
        """Exact test: is ``phy`` within ``radius`` of ``(ox, oy)`` at ``now``?"""
        index = self._index
        position, drift = index.bounded(phy, now)
        dx = position[0] - ox
        dy = position[1] - oy
        distance_sq = dx * dx + dy * dy
        if drift > 0.0:
            verdict = within_range(distance_sq, radius, drift)
            if verdict is not None:
                return verdict
            position = index.exact(phy, now)
            dx = position[0] - ox
            dy = position[1] - oy
            distance_sq = dx * dx + dy * dy
        return distance_sq <= radius_sq

    # ------------------------------------------------------------ busy sense
    def is_busy_for(self, phy: "Phy") -> bool:
        """Carrier sense: is the channel busy as perceived by ``phy``?

        Defined as membership in the interference set of any in-flight
        transmission (frozen at transmission start), so it always agrees
        with the reception bookkeeping.  A powered-down radio senses nothing.
        """
        if not phy.enabled:
            return False
        if phy.transmitting:
            return True
        now = self.sim.now
        for reception in self._active_receptions[phy.node_id]:
            if reception.end_time > now:
                return True
        return False

    # ---------------------------------------------------------------- transmit
    def transmit(self, sender: "Phy", frame: Frame) -> float:
        """Start transmitting ``frame`` from ``sender``.

        Returns the airtime of the frame.  Reception outcomes are resolved
        when the transmission ends; all geometry is frozen now, at start.
        """
        now = self.sim.now
        duration = self.config.airtime(frame.size_bytes)
        end_time = now + duration
        index = self._index
        sender_pos = index.exact(sender, now)
        tx = _Transmission(
            sender=sender,
            frame=frame,
            start_time=now,
            end_time=end_time,
            sender_pos=sender_pos,
        )
        self.stats.transmissions += 1

        cs_range = self.config.carrier_sense_range_m
        rx_range = self.config.transmission_range_m

        # A node that starts transmitting corrupts anything it was receiving.
        for reception in self._active_receptions[sender.node_id]:
            if not reception.corrupted:
                reception.corrupted = True
                self.stats.half_duplex_losses += 1

        active_receptions = self._active_receptions
        sender_id = sender.node_id
        for _, node_id, phy, in_range in index.interferers(
            sender, sender_pos, cs_range, rx_range, now
        ):
            reception = _Reception(
                receiver=phy,
                receiver_id=node_id,
                frame=frame,
                sender_id=sender_id,
                end_time=end_time,
                in_range=in_range,
            )
            ongoing = active_receptions[node_id]
            if ongoing:
                # Overlapping energy at this receiver: everything is lost.
                for other in ongoing:
                    if not other.corrupted:
                        other.corrupted = True
                        self.stats.collisions += 1
                reception.corrupted = True
                self.stats.collisions += 1
            if phy.transmitting:
                reception.corrupted = True
                self.stats.half_duplex_losses += 1
            reception.node_slot = len(ongoing)
            ongoing.append(reception)
            tx.receptions.append(reception)

        self._active.append(tx)
        self.sim.schedule(duration, self._finish_transmission, tx)
        return duration

    def _finish_transmission(self, tx: _Transmission) -> None:
        self._active.remove(tx)
        active_receptions = self._active_receptions
        for reception in tx.receptions:
            receiver = reception.receiver
            # O(1) intrusive removal: swap the list tail into this record's
            # slot (per-node reception lists are order-insensitive).
            ongoing = active_receptions[reception.receiver_id]
            tail = ongoing.pop()
            if tail is not reception:
                slot = reception.node_slot
                ongoing[slot] = tail
                tail.node_slot = slot
            if not receiver.enabled:
                self.stats.disabled_discards += 1
                continue
            if not reception.in_range:
                self.stats.out_of_range_discards += 1
                continue
            if reception.corrupted:
                continue
            if receiver.transmitting:
                self.stats.half_duplex_losses += 1
                continue
            self.stats.deliveries += 1
            receiver.deliver(reception.frame, reception.sender_id)
        tx.sender.transmission_finished()

    # ------------------------------------------------------- power transitions
    def radio_powered_down(self, phy: "Phy") -> None:
        """A radio went down mid-flight: it stops receiving *and* radiating.

        Its pending incoming copies can never decode, and any transmission it
        had on the air is truncated, so every receiver's copy of that frame
        is undecodable too.  All copies are marked corrupted without counting
        a collision: a dead radio stops inflating ``deliveries`` and
        ``collisions``.
        """
        for reception in self._active_receptions.get(phy.node_id, ()):
            reception.corrupted = True
        now = self.sim.now
        for tx in self._active:
            if tx.sender is phy and tx.end_time > now:
                for reception in tx.receptions:
                    reception.corrupted = True

    def radio_powered_up(self, phy: "Phy") -> None:
        """A radio came (back) up: attach it to every in-flight transmission."""
        self._attach_to_active(phy)

    def _attach_to_active(self, phy: "Phy") -> None:
        """Give ``phy`` corrupted copies of every transmission it can sense.

        Used for radios that register or power up mid-flight: they missed
        the head of each frame, so they sense energy (and participate in
        collision bookkeeping) but can never decode the frame itself.
        """
        if not self._active:
            return
        now = self.sim.now
        position = self._index.exact(phy, now)
        cs_range = self.config.carrier_sense_range_m
        rx_range = self.config.transmission_range_m
        cs_sq = cs_range * cs_range
        rx_sq = rx_range * rx_range
        ongoing = self._active_receptions[phy.node_id]
        for tx in self._active:
            if tx.sender is phy or tx.end_time <= now:
                continue
            # A power cycle inside one airtime must not attach a second copy
            # of a transmission the radio already holds (from before it went
            # down) -- duplicates would double-count the discard statistics.
            if any(reception.frame is tx.frame for reception in ongoing):
                continue
            dx = tx.sender_pos[0] - position[0]
            dy = tx.sender_pos[1] - position[1]
            distance_sq = dx * dx + dy * dy
            if distance_sq > cs_sq:
                continue
            reception = _Reception(
                receiver=phy,
                receiver_id=phy.node_id,
                frame=tx.frame,
                sender_id=tx.sender.node_id,
                end_time=tx.end_time,
                in_range=distance_sq <= rx_sq,
                corrupted=True,
                node_slot=len(ongoing),
            )
            ongoing.append(reception)
            tx.receptions.append(reception)

"""Radio and MAC configuration.

Defaults mirror the paper's GloMoSim setup: IEEE 802.11 at 2 Mbps with a
configurable transmission range (the paper sweeps 45 m - 85 m).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RadioConfig:
    """Physical-layer parameters.

    Attributes
    ----------
    transmission_range_m:
        Unit-disk reception range; nodes farther apart than this cannot
        receive each other's frames.
    carrier_sense_range_m:
        Range within which a transmission is sensed as channel-busy (and can
        corrupt concurrent receptions).  Defaults to the transmission range
        when left at ``None``.
    bitrate_bps:
        Channel bit rate.  The paper assumes 2 Mbps.
    preamble_s:
        Fixed per-frame PHY overhead added to the transmission duration.
    medium_index:
        Spatial index used by the medium to find receivers/interferers:
        ``"grid"`` (uniform grid + position memo, O(k) per transmission, the
        default) or ``"naive"`` (the O(N) linear-scan reference).  Both
        produce bit-identical results.
    fanout_kernel:
        Reception-bookkeeping kernel of the medium: ``"batch"`` (one pooled
        :class:`~repro.net.medium.ReceptionBatch` per transmission --
        parallel receiver arrays plus a corruption bitmap, the default) or
        ``"object"`` (one pooled per-receiver record per in-flight copy, the
        bit-identical reference).  A pure performance knob: both kernels
        produce identical statistics, delivery sequences and event counts.
    grid_cell_m:
        Cell size of the uniform grid.  The default is speed-aware: a third
        of the carrier-sense range for slow fleets (``speed_bound_mps``
        below 2 m/s, where finer cells prune more candidates and rebuilds
        are rare) and half the carrier-sense range otherwise (fast fleets
        rebuild the grid often, so fewer, larger cells win).  Cell size is a
        pure performance knob -- queries classify candidates exactly, so
        results are identical for any value.
    speed_bound_mps:
        Upper bound on node speed, used only to pick the default grid cell
        size.  ``None`` (unknown) selects the conservative half-range cell.
    grid_slack_m:
        Staleness budget of the grid in metres: cached positions may drift
        this far before being refreshed, and the grid is rebuilt once the
        fleet may have moved this far.  Queries inflate their radius
        accordingly, so results are unaffected.  Defaults to 1/8 cell.
    motion_band_m:
        Displacement-epoch band of the motion service: a sender keeps its
        pre-classified interference window while it has moved less than
        this distance from the window's anchor position.  A wider band
        means fewer window rebuilds but a wider boundary ring of
        per-transmission exact checks; classification stays exact for any
        value, so this is a pure performance knob.  Defaults to
        ``grid_slack_m``.
    area_topology:
        Geometry of the radio area: ``"flat"`` (the paper's bounded
        rectangle, the default) or ``"torus"`` (opposite edges identified;
        distances use the minimum-image convention).  The torus removes the
        paper's edge effects -- border nodes have the same expected degree
        as interior ones -- and needs the area dimensions below.
    area_width_m / area_height_m:
        Dimensions of the (periodic) area; required for ``"torus"`` and
        ignored for ``"flat"``.
    shards:
        Number of spatial regions of the region-sharded engine (see
        :mod:`repro.sim.shard`).  With more than one shard the medium routes
        each delivery into the receiving radio's home-shard event heap (when
        the driving simulator is sharded).  ``1`` -- the default -- is the
        classic single-calendar engine.
    """

    transmission_range_m: float = 75.0
    carrier_sense_range_m: float | None = None
    bitrate_bps: float = 2_000_000.0
    preamble_s: float = 192e-6
    medium_index: str = "grid"
    fanout_kernel: str = "batch"
    grid_cell_m: float | None = None
    grid_slack_m: float | None = None
    motion_band_m: float | None = None
    speed_bound_mps: float | None = None
    area_topology: str = "flat"
    area_width_m: float | None = None
    area_height_m: float | None = None
    shards: int = 1

    def __post_init__(self) -> None:
        if self.transmission_range_m <= 0:
            raise ValueError("transmission_range_m must be positive")
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate_bps must be positive")
        if self.carrier_sense_range_m is None:
            self.carrier_sense_range_m = self.transmission_range_m
        if self.carrier_sense_range_m < self.transmission_range_m:
            raise ValueError("carrier_sense_range_m cannot be below transmission_range_m")
        if self.medium_index not in ("grid", "naive"):
            raise ValueError(
                f"medium_index must be 'grid' or 'naive', got {self.medium_index!r}"
            )
        if self.fanout_kernel not in ("batch", "object"):
            raise ValueError(
                f"fanout_kernel must be 'batch' or 'object', got {self.fanout_kernel!r}"
            )
        if self.area_topology not in ("flat", "torus"):
            raise ValueError(
                f"area_topology must be 'flat' or 'torus', got {self.area_topology!r}"
            )
        if self.area_topology == "torus":
            if not self.area_width_m or not self.area_height_m:
                raise ValueError("a torus area needs area_width_m and area_height_m")
            if self.area_width_m <= 0 or self.area_height_m <= 0:
                raise ValueError("torus area dimensions must be positive")
        if self.speed_bound_mps is not None and self.speed_bound_mps < 0:
            raise ValueError("speed_bound_mps must be non-negative")
        if self.grid_cell_m is None:
            self.grid_cell_m = self.carrier_sense_range_m / self.grid_cell_divisor(
                self.speed_bound_mps
            )
        if self.grid_cell_m <= 0:
            raise ValueError("grid_cell_m must be positive")
        if self.grid_slack_m is None:
            self.grid_slack_m = self.grid_cell_m / 8.0
        if self.grid_slack_m < 0:
            raise ValueError("grid_slack_m must be non-negative")
        if self.motion_band_m is None:
            self.motion_band_m = self.grid_slack_m
        if self.motion_band_m < 0:
            raise ValueError("motion_band_m must be non-negative")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")

    #: Fleets at or above this speed bound use the coarser cs/2 grid cell.
    FAST_FLEET_MPS = 2.0

    @staticmethod
    def grid_cell_divisor(speed_bound_mps: float | None) -> float:
        """Carrier-sense-range divisor for the default grid cell size.

        Slow fleets (bound below :data:`FAST_FLEET_MPS`) get cs/3 -- finer
        cells prune more of the candidate window and the grid rarely needs a
        rebuild; fast or unknown-speed fleets get the rebuild-friendly cs/2.
        """
        if speed_bound_mps is None or speed_bound_mps >= RadioConfig.FAST_FLEET_MPS:
            return 2.0
        return 3.0

    def airtime(self, size_bytes: int) -> float:
        """Time in seconds to put ``size_bytes`` on the air."""
        return self.preamble_s + (size_bytes * 8.0) / self.bitrate_bps


@dataclass
class MacConfig:
    """CSMA/CA MAC parameters (802.11-DCF-like)."""

    slot_time_s: float = 20e-6
    sifs_s: float = 10e-6
    difs_s: float = 50e-6
    cw_min: int = 16
    cw_max: int = 1024
    retry_limit: int = 4
    ack_timeout_s: float = 1.5e-3
    ack_size_bytes: int = 14
    queue_limit: int = 64

    def __post_init__(self) -> None:
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ValueError("contention window bounds must satisfy 1 <= cw_min <= cw_max")
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be non-negative")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")

"""Radio and MAC configuration.

Defaults mirror the paper's GloMoSim setup: IEEE 802.11 at 2 Mbps with a
configurable transmission range (the paper sweeps 45 m - 85 m).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RadioConfig:
    """Physical-layer parameters.

    Attributes
    ----------
    transmission_range_m:
        Unit-disk reception range; nodes farther apart than this cannot
        receive each other's frames.
    carrier_sense_range_m:
        Range within which a transmission is sensed as channel-busy (and can
        corrupt concurrent receptions).  Defaults to the transmission range
        when left at ``None``.
    bitrate_bps:
        Channel bit rate.  The paper assumes 2 Mbps.
    preamble_s:
        Fixed per-frame PHY overhead added to the transmission duration.
    """

    transmission_range_m: float = 75.0
    carrier_sense_range_m: float | None = None
    bitrate_bps: float = 2_000_000.0
    preamble_s: float = 192e-6

    def __post_init__(self) -> None:
        if self.transmission_range_m <= 0:
            raise ValueError("transmission_range_m must be positive")
        if self.bitrate_bps <= 0:
            raise ValueError("bitrate_bps must be positive")
        if self.carrier_sense_range_m is None:
            self.carrier_sense_range_m = self.transmission_range_m
        if self.carrier_sense_range_m < self.transmission_range_m:
            raise ValueError("carrier_sense_range_m cannot be below transmission_range_m")

    def airtime(self, size_bytes: int) -> float:
        """Time in seconds to put ``size_bytes`` on the air."""
        return self.preamble_s + (size_bytes * 8.0) / self.bitrate_bps


@dataclass
class MacConfig:
    """CSMA/CA MAC parameters (802.11-DCF-like)."""

    slot_time_s: float = 20e-6
    sifs_s: float = 10e-6
    difs_s: float = 50e-6
    cw_min: int = 16
    cw_max: int = 1024
    retry_limit: int = 4
    ack_timeout_s: float = 1.5e-3
    ack_size_bytes: int = 14
    queue_limit: int = 64

    def __post_init__(self) -> None:
        if self.cw_min < 1 or self.cw_max < self.cw_min:
            raise ValueError("contention window bounds must satisfy 1 <= cw_min <= cw_max")
        if self.retry_limit < 0:
            raise ValueError("retry_limit must be non-negative")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")

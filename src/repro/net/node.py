"""A mobile node and its protocol stack.

A :class:`Node` owns:

* a mobility model providing its position over time,
* a radio (:class:`~repro.net.phy.Phy`) bound to the shared medium,
* a CSMA/CA MAC,
* a packet dispatcher that routes received packets to the protocol that
  registered the packet's type (AODV, MAODV, gossip, applications),
* a list of applications started when the scenario starts.

The node itself knows nothing about routing or gossip; protocols attach
themselves via :meth:`register_handler` and :meth:`add_link_failure_listener`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.net.addressing import NodeId
from repro.net.config import MacConfig
from repro.net.mac import CsmaMac
from repro.net.medium import Medium
from repro.net.packet import Packet
from repro.net.phy import Phy
from repro.sim.engine import Simulator
from repro.sim.random import RandomStreams

PacketHandler = Callable[[Packet, NodeId], None]
LinkFailureListener = Callable[[Packet, NodeId], None]


class Node:
    """One mobile node in the ad-hoc network."""

    def __init__(
        self,
        node_id: NodeId,
        sim: Simulator,
        medium: Medium,
        mobility,
        streams: RandomStreams,
        mac_config: Optional[MacConfig] = None,
        build_mac: bool = True,
    ):
        self.node_id = node_id
        self.sim = sim
        self.medium = medium
        self.mobility = mobility
        self.streams = streams
        self.phy = Phy(self, medium)
        #: ``None`` for foreign radios in a sharded worker: a dark radio's
        #: MAC state machine can never run (its :class:`Phy` callbacks only
        #: fire for enabled radios), so the worker skips the MAC object and
        #: its per-node backoff stream.  ``for_node`` streams are
        #: hash-derived, so not creating one consumes nothing shared.
        self.mac: Optional[CsmaMac] = None
        if build_mac:
            self.mac = CsmaMac(
                sim,
                self.phy,
                mac_config or MacConfig(),
                streams.for_node("mac", node_id),
                on_receive=self.deliver,
                on_unicast_failure=self._on_unicast_failure,
            )
        self._handlers: Dict[Type[Packet], PacketHandler] = {}
        #: (sniffer, packet types it wants or None for all), registration order.
        self._sniffers: List[Tuple[PacketHandler, Optional[Tuple[Type[Packet], ...]]]] = []
        #: Per-concrete-packet-type dispatch chain: the matching sniffers (in
        #: registration order) followed by the resolved handler.  Built lazily
        #: on first delivery of each type; invalidated whenever a handler or
        #: sniffer is added.  This turns the per-packet "loop all sniffers,
        #: dict-lookup plus isinstance-scan for the handler" dispatch into a
        #: single dict hit -- the hello fan-out's dispatch cost no longer
        #: scales with the number of registered protocols or groups.
        self._dispatch_cache: Dict[Type[Packet], Tuple[PacketHandler, ...]] = {}
        self._link_failure_listeners: List[LinkFailureListener] = []
        self.applications: List = []
        self._started = False

    # ----------------------------------------------------------------- basics
    def position(self, at_time: Optional[float] = None) -> Tuple[float, float]:
        """Return the node position at ``at_time`` (default: now)."""
        if at_time is None:
            at_time = self.sim.now
        return self.mobility.position(at_time)

    # ------------------------------------------------------ failure injection
    @property
    def alive(self) -> bool:
        """False while the node is simulated as crashed (radio off)."""
        return self.phy.enabled

    def fail(self) -> None:
        """Crash the node: its radio stops transmitting and receiving.

        The medium drops the node from every interference set, so a crashed
        node no longer appears as a neighbour or influences channel
        statistics.  Protocol state (route tables, gossip buffers) is
        intentionally kept, modelling a transient outage rather than a
        reboot; neighbours detect the failure through missed hellos and
        MAC-level delivery failures.
        """
        self.phy.power_down()

    def recover(self) -> None:
        """Bring a crashed node back online.

        The radio rejoins the channel immediately (including the
        interference sets of any transmissions already in flight).
        """
        self.phy.power_up()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Node({self.node_id})"

    # ----------------------------------------------------------- dispatcher
    def register_handler(self, packet_type: Type[Packet], handler: PacketHandler) -> None:
        """Route received packets of ``packet_type`` (exact class) to ``handler``."""
        if packet_type in self._handlers:
            raise ValueError(
                f"node {self.node_id}: handler for {packet_type.__name__} already registered"
            )
        self._handlers[packet_type] = handler
        self._dispatch_cache.clear()

    def add_sniffer(
        self,
        sniffer: PacketHandler,
        packet_types: Optional[Tuple[Type[Packet], ...]] = None,
    ) -> None:
        """Register a callback invoked for packets this node receives.

        With the default ``packet_types=None`` the sniffer sees *every*
        packet; protocols use this for passive observations such as neighbour
        liveness (AODV).  Passing a tuple of packet classes restricts the
        sniffer to those types (and their subclasses), so type-specific
        observers stop taxing the dispatch of every other packet.
        """
        self._sniffers.append((sniffer, tuple(packet_types) if packet_types else None))
        self._dispatch_cache.clear()

    def deliver(self, packet: Packet, from_node: NodeId) -> None:
        """Dispatch a packet received from the MAC (or from a local protocol)."""
        chain = self._dispatch_cache.get(type(packet))
        if chain is None:
            chain = self._build_dispatch_chain(type(packet))
        for callback in chain:
            callback(packet, from_node)

    def _build_dispatch_chain(self, packet_type: Type[Packet]) -> Tuple[PacketHandler, ...]:
        """Resolve and cache the full delivery chain of one packet type.

        The chain preserves the historic call order exactly: sniffers in
        registration order first, then the handler (exact type match, falling
        back to the first registered base class).
        """
        callbacks = [
            sniffer
            for sniffer, wanted in self._sniffers
            if wanted is None or issubclass(packet_type, wanted)
        ]
        handler = self._handlers.get(packet_type)
        if handler is None:
            for registered_type, candidate in self._handlers.items():
                if issubclass(packet_type, registered_type):
                    handler = candidate
                    break
        if handler is not None:
            callbacks.append(handler)
        chain = tuple(callbacks)
        self._dispatch_cache[packet_type] = chain
        return chain

    # ------------------------------------------------------------- link layer
    def send_frame(self, packet: Packet, next_hop: NodeId) -> bool:
        """Hand a packet to the MAC for single-hop transmission."""
        return self.mac.send(packet, next_hop)

    def add_link_failure_listener(self, listener: LinkFailureListener) -> None:
        """Subscribe to MAC-level unicast delivery failures (link-break hints)."""
        self._link_failure_listeners.append(listener)

    def _on_unicast_failure(self, packet: Packet, next_hop: NodeId) -> None:
        for listener in self._link_failure_listeners:
            listener(packet, next_hop)

    # ----------------------------------------------------------- applications
    def add_application(self, application) -> None:
        """Attach an application object; it is started with the node."""
        self.applications.append(application)
        if self._started and hasattr(application, "start"):
            application.start()

    def start(self) -> None:
        """Start every attached application (idempotent)."""
        if self._started:
            return
        self._started = True
        for application in self.applications:
            if hasattr(application, "start"):
                application.start()

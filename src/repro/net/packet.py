"""Packet and frame base types.

A :class:`Packet` is a network-layer unit: it knows its originator, its final
destination (node, group, or broadcast) and its size in bytes.  Protocols
subclass it to add their own fields (RREQ, MACT, gossip requests, ...).

A :class:`Frame` is the link-layer unit handed to the MAC: a packet plus the
addresses of the transmitting node and of the next hop (or broadcast).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.net.addressing import BROADCAST_ADDRESS, NodeId

_packet_uid_counter = itertools.count()


def _next_uid() -> int:
    return next(_packet_uid_counter)


@dataclass
class Packet:
    """Base class for every network-layer packet.

    Attributes
    ----------
    origin:
        Node that created the packet.
    destination:
        Final destination: a node id, a multicast group address, or
        :data:`~repro.net.addressing.BROADCAST_ADDRESS`.
    size_bytes:
        Wire size used to compute transmission delay and channel occupancy.
    ttl:
        Remaining hop budget; forwarding layers decrement it and drop the
        packet when it reaches zero.
    uid:
        Monotonically increasing identifier useful for tracing and
        de-duplication in tests.
    """

    origin: NodeId
    destination: int
    size_bytes: int = 64
    ttl: int = 32
    uid: int = field(default_factory=_next_uid)

    #: Class-level flag (not a dataclass field): link-layer control packets
    #: (MAC ACKs) override this with ``True``.  The medium's broadcast
    #: delivery fast path keys off it -- ordinary broadcast traffic skips
    #: the MAC's per-receiver address/ACK checks entirely.
    is_mac_control = False

    def copy_for_forwarding(self) -> "Packet":
        """Return a shallow copy with the TTL decremented by one."""
        import copy

        clone = copy.copy(self)
        clone.ttl = self.ttl - 1
        return clone


class Frame:
    """A link-layer frame: one MAC-level transmission attempt.

    A plain slotted class rather than a dataclass: one is created per MAC
    transmission attempt and its fields are read in every per-receiver loop
    of the medium, so cheap construction and attribute access matter.
    """

    __slots__ = ("src", "dst", "packet", "header_bytes")

    def __init__(self, src: NodeId, dst: int, packet: Packet, header_bytes: int = 34):
        self.src = src
        self.dst = dst
        self.packet = packet
        #: Extra link-layer header bytes added on top of the packet size.
        self.header_bytes = header_bytes

    @property
    def size_bytes(self) -> int:
        """Total on-air size of the frame."""
        return self.packet.size_bytes + self.header_bytes

    @property
    def is_broadcast(self) -> bool:
        """True when the frame is link-layer broadcast."""
        return self.dst == BROADCAST_ADDRESS

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Frame({self.src}->{self.dst}, {type(self.packet).__name__}, "
            f"{self.size_bytes}B)"
        )


@dataclass
class UnicastData(Packet):
    """A network-layer envelope carrying an upper-layer packet to one node.

    The AODV layer forwards :class:`UnicastData` hop by hop towards
    ``destination`` and hands ``payload`` to the destination node's protocol
    dispatcher.  Gossip replies and cached-gossip requests travel this way.
    """

    payload: Optional[Packet] = None

    def __post_init__(self) -> None:
        if self.payload is not None:
            # The envelope adds a small IP-like header over the payload.
            self.size_bytes = self.payload.size_bytes + 20

"""Wireless network substrate.

This package models the pieces of the GloMoSim stack that the paper's
evaluation relies on:

* :mod:`repro.net.addressing` -- node identifiers, broadcast and multicast
  group addresses.
* :mod:`repro.net.packet` -- base packet / frame types shared by every layer.
* :mod:`repro.net.medium` -- the shared wireless medium: unit-disk
  propagation, carrier sensing and collision handling, with all geometry
  frozen at transmission start.
* :mod:`repro.net.spatial` -- spatial indexing behind the medium: a uniform
  grid over a bounded-drift position memo (O(k) candidate queries) and the
  O(N) linear-scan reference implementation.
* :mod:`repro.net.phy` -- per-node radio bound to the medium.
* :mod:`repro.net.mac` -- a CSMA/CA MAC in the spirit of IEEE 802.11 DCF:
  carrier sense, binary-exponential backoff, unicast ACK + retransmission,
  broadcast without recovery.
* :mod:`repro.net.node` -- a mobile node owning a protocol stack.
"""

from repro.net.addressing import BROADCAST_ADDRESS, GroupAddress, NodeId, is_multicast
from repro.net.config import MacConfig, RadioConfig
from repro.net.mac import CsmaMac, MacStats
from repro.net.medium import Medium, MediumStats
from repro.net.node import Node
from repro.net.packet import Frame, Packet
from repro.net.spatial import LinearScanIndex, PositionMemo, UniformGridIndex

__all__ = [
    "BROADCAST_ADDRESS",
    "CsmaMac",
    "Frame",
    "GroupAddress",
    "LinearScanIndex",
    "MacConfig",
    "MacStats",
    "Medium",
    "MediumStats",
    "Node",
    "NodeId",
    "Packet",
    "PositionMemo",
    "RadioConfig",
    "UniformGridIndex",
    "is_multicast",
]

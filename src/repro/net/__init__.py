"""Wireless network substrate.

This package models the pieces of the GloMoSim stack that the paper's
evaluation relies on:

* :mod:`repro.net.addressing` -- node identifiers, broadcast and multicast
  group addresses.
* :mod:`repro.net.packet` -- base packet / frame types shared by every layer.
* :mod:`repro.net.medium` -- the shared wireless medium: unit-disk
  propagation, carrier sensing and collision handling.
* :mod:`repro.net.phy` -- per-node radio bound to the medium.
* :mod:`repro.net.mac` -- a CSMA/CA MAC in the spirit of IEEE 802.11 DCF:
  carrier sense, binary-exponential backoff, unicast ACK + retransmission,
  broadcast without recovery.
* :mod:`repro.net.node` -- a mobile node owning a protocol stack.
"""

from repro.net.addressing import BROADCAST_ADDRESS, GroupAddress, NodeId, is_multicast
from repro.net.config import MacConfig, RadioConfig
from repro.net.mac import CsmaMac, MacStats
from repro.net.medium import Medium
from repro.net.node import Node
from repro.net.packet import Frame, Packet

__all__ = [
    "BROADCAST_ADDRESS",
    "CsmaMac",
    "Frame",
    "GroupAddress",
    "MacConfig",
    "MacStats",
    "Medium",
    "Node",
    "NodeId",
    "Packet",
    "RadioConfig",
    "is_multicast",
]

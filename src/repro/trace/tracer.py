"""Packet reception tracing.

The tracer hooks into each node's sniffer interface, so it observes every
packet a node's dispatcher handles (control and data, any protocol), without
touching the protocols themselves.  It is the tool used to answer questions
such as "did the join request ever reach node 7?" or "how much gossip traffic
did this run generate?" when debugging protocol behaviour.
"""

from __future__ import annotations

import itertools
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional

from repro.net.node import Node
from repro.net.packet import Packet


@dataclass(frozen=True)
class TraceRecord:
    """One observed packet reception."""

    time: float
    node: int
    from_node: int
    packet_type: str
    origin: int
    destination: int
    size_bytes: int
    uid: int

    def __str__(self) -> str:
        return (
            f"{self.time:10.4f}s node {self.node:3d} <- {self.from_node:3d}  "
            f"{self.packet_type:<20s} origin={self.origin} dst={self.destination} "
            f"{self.size_bytes}B"
        )


class PacketTracer:
    """Records packet receptions at a set of nodes.

    Parameters
    ----------
    capacity:
        Maximum number of records kept (oldest dropped first); ``None`` keeps
        everything, which can be large for long runs.
    packet_filter:
        Optional predicate ``f(packet) -> bool``; only matching packets are
        recorded.
    """

    def __init__(
        self,
        capacity: Optional[int] = 100_000,
        packet_filter: Optional[Callable[[Packet], bool]] = None,
    ):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self.packet_filter = packet_filter
        #: Retained records, oldest first.  A ``deque(maxlen=capacity)``: at
        #: capacity each append evicts the oldest record in O(1), where the
        #: old list-based ``del records[0]`` shifted the whole buffer.
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self.dropped = 0
        self._attached: List[int] = []

    # ------------------------------------------------------------- attachment
    def attach(self, node: Node) -> None:
        """Start tracing receptions at ``node``."""
        node.add_sniffer(self._make_sniffer(node))
        self._attached.append(node.node_id)

    def attach_all(self, nodes: Iterable[Node]) -> None:
        """Start tracing receptions at every node in ``nodes``."""
        for node in nodes:
            self.attach(node)

    @property
    def attached_nodes(self) -> List[int]:
        """Identifiers of the nodes being traced."""
        return list(self._attached)

    def _make_sniffer(self, node: Node):
        def sniffer(packet: Packet, from_node: int) -> None:
            if self.packet_filter is not None and not self.packet_filter(packet):
                return
            record = TraceRecord(
                time=node.sim.now,
                node=node.node_id,
                from_node=from_node,
                packet_type=type(packet).__name__,
                origin=packet.origin,
                destination=packet.destination,
                size_bytes=packet.size_bytes,
                uid=packet.uid,
            )
            records = self.records
            if records.maxlen is not None and len(records) == records.maxlen:
                self.dropped += 1
            records.append(record)

        return sniffer

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.records)

    def filter(
        self,
        *,
        node: Optional[int] = None,
        packet_type: Optional[str] = None,
        origin: Optional[int] = None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> List[TraceRecord]:
        """Records matching every provided criterion."""
        result = []
        for record in self.records:
            if node is not None and record.node != node:
                continue
            if packet_type is not None and record.packet_type != packet_type:
                continue
            if origin is not None and record.origin != origin:
                continue
            if since is not None and record.time < since:
                continue
            if until is not None and record.time > until:
                continue
            result.append(record)
        return result

    def counts_by_type(self) -> Dict[str, int]:
        """Number of recorded receptions per packet type."""
        return dict(Counter(record.packet_type for record in self.records))

    def bytes_by_type(self) -> Dict[str, int]:
        """Total received bytes per packet type (control-overhead breakdown)."""
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.packet_type] = totals.get(record.packet_type, 0) + record.size_bytes
        return totals

    def to_text(self, limit: Optional[int] = 50) -> str:
        """A plain-text dump of the (most recent) trace records."""
        records = self.records
        if limit is not None and len(records) > limit:
            records = itertools.islice(records, len(records) - limit, None)
        return "\n".join(str(record) for record in records)

    def clear(self) -> None:
        """Drop every recorded event."""
        self.records.clear()
        self.dropped = 0

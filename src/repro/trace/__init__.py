"""Packet-level tracing for debugging and analysis.

* :class:`~repro.trace.tracer.PacketTracer` -- records every packet received
  by the nodes it is attached to, with timestamps and packet types; supports
  filtering, per-type counts and plain-text dumps.
* :class:`~repro.trace.tracer.TraceRecord` -- one recorded reception.
"""

from repro.trace.tracer import PacketTracer, TraceRecord

__all__ = ["PacketTracer", "TraceRecord"]

"""Named, independently seeded random streams.

Every stochastic decision in the stack (mobility waypoints, MAC backoff,
gossip partner selection, ...) draws from its own named stream derived from a
single master seed.  This keeps experiments reproducible and lets one vary a
single source of randomness (for example the mobility pattern) while keeping
all others fixed -- the standard variance-reduction technique used when
comparing MAODV against MAODV+AG on the *same* node trajectories.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream ``name``.

    The derivation is a SHA-256 hash so that child streams are statistically
    independent and stable across Python versions and platforms.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named :class:`random.Random` streams.

    >>> streams = RandomStreams(42)
    >>> a = streams.get("mobility")
    >>> b = streams.get("mobility")
    >>> a is b
    True
    >>> streams.get("mac") is a
    False
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def for_node(self, name: str, node_id: int) -> random.Random:
        """Return a per-node sub-stream, e.g. ``for_node('mac', 7)``."""
        return self.get(f"{name}/node-{node_id}")

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child :class:`RandomStreams` with an independent seed."""
        return RandomStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomStreams(master_seed={self.master_seed}, streams={len(self._streams)})"

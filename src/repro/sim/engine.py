"""The discrete-event simulation core.

The :class:`Simulator` keeps a priority queue (a binary heap) of scheduled
callbacks keyed by ``(time, sequence_number)``.  The sequence number breaks
ties between events scheduled for the same instant so that execution order is
deterministic and matches scheduling order, which is important for
reproducibility of the protocols built on top.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class EventHandle:
    """A handle to a scheduled event.

    The handle can be used to :meth:`cancel` the event before it fires and to
    query whether it is still :attr:`pending`.
    """

    __slots__ = ("time", "seq", "callback", "args", "_cancelled", "_fired")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Cancel the event.  Cancelling an already fired event is a no-op."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """True when the event was cancelled before firing."""
        return self._cancelled and not self._fired

    @property
    def fired(self) -> bool:
        """True once the callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True when the event is still waiting to fire."""
        return not self._cancelled and not self._fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "pending" if self.pending else ("cancelled" if self.cancelled else "fired")
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """A sequential discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        # Heap of (time, seq, event): tuple ordering avoids calling
        # EventHandle.__lt__ for every sift, which is measurable at scale.
        self._queue: List[tuple] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled (including cancelled ones)."""
        return sum(1 for entry in self._queue if entry[2].pending)

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self._now}"
            )
        if not callable(callback):
            raise SimulationError(f"callback {callback!r} is not callable")
        event = EventHandle(float(time), self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would advance past this time.  Events at
            exactly ``until`` are executed.  When omitted the simulation runs
            until the event queue drains.
        max_events:
            Optional safety valve limiting the number of callbacks executed
            in this call.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0][2]
                if not event.pending:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    self._now = float(until)
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                event._fired = True
                event.callback(*event.args)
                self._events_processed += 1
                executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = float(until)
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the running simulation after the current event completes."""
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        self._queue.clear()

"""The discrete-event simulation core.

The :class:`Simulator` keeps a priority queue (a binary heap) of scheduled
callbacks keyed by ``(time, sequence_number)``.  The sequence number breaks
ties between events scheduled for the same instant so that execution order is
deterministic and matches scheduling order, which is important for
reproducibility of the protocols built on top.

Internals: the slot pool
------------------------
Scheduling is the single hottest operation of a paper-scale run (about one
schedule per two events fired), so the calendar is allocation-free on its hot
path.  Event state lives in a *slot pool* -- parallel lists holding each
event's sequence number, lifecycle state, callback and argument tuple --
recycled through a free list, and the heap orders plain ``(time, seq, slot)``
tuples, which compare on the first two fields without ever calling back into
Python-level ``__lt__``.

Cancellation is O(1) and lazy: the slot is released immediately (its stored
sequence number no longer matches the heap entry's, which is what marks the
entry dead) and the heap entry remains behind as a *tombstone* that is
discarded when it surfaces.  A tombstone counter triggers a periodic in-place
compaction so a cancel-heavy workload cannot grow the heap unboundedly.

:class:`EventHandle` is a thin façade kept for the public API: it is only
allocated by :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.
Internal hot paths (the MAC, the medium, the timer helpers) use the raw slot
API -- :meth:`Simulator.call_in` and friends -- which returns plain slot
indexes and allocates nothing beyond the heap tuple.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Detached-handle states (EventHandle._state; ``None`` while still pending).
_FIRED = "fired"
_CANCELLED = "cancelled"

#: Compaction policy: rebuild the heap in place once tombstones outnumber
#: live entries and there are enough of them for the rebuild to pay off.
_COMPACT_MIN_TOMBSTONES = 64


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class EventHandle:
    """A handle to a scheduled event.

    The handle can be used to :meth:`cancel` the event before it fires and to
    query whether it is still :attr:`pending`.  Handles are a façade over the
    simulator's internal slot pool: they are only created by the public
    ``schedule``/``schedule_at`` API, so hot paths that never look at the
    handle pay nothing for it.
    """

    __slots__ = ("_sim", "_slot", "_state", "time", "seq", "callback", "args")

    def __init__(self, sim: "Simulator", slot: int, time: float, seq: int,
                 callback: Callable[..., None], args: tuple):
        self._sim = sim
        self._slot = slot
        self._state: Optional[str] = None
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args

    def cancel(self) -> None:
        """Cancel the event.  Cancelling an already fired event is a no-op."""
        if self._state is None:
            self._sim._cancel_slot(self._slot, self.seq)

    @property
    def cancelled(self) -> bool:
        """True when the event was cancelled before firing."""
        return self._state is _CANCELLED

    @property
    def fired(self) -> bool:
        """True once the callback has run."""
        return self._state is _FIRED

    @property
    def pending(self) -> bool:
        """True when the event is still waiting to fire."""
        return self._state is None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = self._state or "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Simulator:
    """A sequential discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: Class-level flag: the region-sharded engine
    #: (:class:`repro.sim.shard.ShardedSimulator`) overrides this with
    #: ``True``.  Consumers (the medium's delivery routing) key off it with
    #: one ``getattr``-free attribute read instead of an isinstance check.
    is_sharded = False

    def __init__(self, start_time: float = 0.0):
        #: Current simulation time in seconds.  A plain attribute (not a
        #: property) because protocol hot paths read it millions of times;
        #: treat it as read-only outside the engine.
        self.now = float(start_time)
        #: Heap of plain (time, seq, slot) tuples; seq is globally unique so
        #: comparisons never reach the third element.
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = 0
        #: Slot pool (parallel lists) plus its free list.  A free slot is
        #: marked by seq -1, so "is this heap entry live" is a single
        #: comparison against the slot's stored seq.
        self._slot_seq: List[int] = []
        self._slot_cb: List[Optional[Callable[..., None]]] = []
        self._slot_args: List[Optional[tuple]] = []
        self._slot_handle: List[Optional[EventHandle]] = []
        self._free: List[int] = []
        #: Cancelled entries still sitting in the heap.
        self._tombstones = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0
        #: Times the heap was compacted to shed tombstones (diagnostic).
        self.compactions = 0

    # ------------------------------------------------------------------ time
    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events currently scheduled and still live."""
        return len(self._heap) - self._tombstones

    # ------------------------------------------------------- introspection
    @property
    def heap_size(self) -> int:
        """Raw heap length, tombstones included (calendar health probe)."""
        return len(self._heap)

    @property
    def tombstones(self) -> int:
        """Cancelled entries still sitting in the heap."""
        return self._tombstones

    @property
    def slot_pool_size(self) -> int:
        """Total slots ever allocated in the event slot pool."""
        return len(self._slot_seq)

    @property
    def free_slots(self) -> int:
        """Slots currently on the free list."""
        return len(self._free)

    # ----------------------------------------------------------- slot pool
    def _alloc(self, time: float, callback: Callable[..., None], args: tuple) -> int:
        """Allocate a slot for one event and push its heap entry."""
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            slot = free.pop()
            self._slot_seq[slot] = seq
            self._slot_cb[slot] = callback
            self._slot_args[slot] = args
        else:
            slot = len(self._slot_seq)
            self._slot_seq.append(seq)
            self._slot_cb.append(callback)
            self._slot_args.append(args)
            self._slot_handle.append(None)
        heapq.heappush(self._heap, (time, seq, slot))
        return slot

    def _cancel_slot(self, slot: int, seq: int) -> bool:
        """O(1) lazy cancellation of the event occupying ``slot``.

        A no-op (returning False) when the slot no longer holds the event
        with sequence number ``seq`` -- it already fired or was cancelled.
        """
        if self._slot_seq[slot] != seq:
            return False
        self._release(slot, _CANCELLED)
        self._tombstones += 1
        tombstones = self._tombstones
        if tombstones >= _COMPACT_MIN_TOMBSTONES and tombstones * 2 > len(self._heap):
            self._compact()
        return True

    def _release(self, slot: int, final_state: str) -> None:
        """Return a slot to the free list, detaching its handle (if any)."""
        self._slot_seq[slot] = -1
        self._slot_cb[slot] = None
        self._slot_args[slot] = None
        handle = self._slot_handle[slot]
        if handle is not None:
            handle._state = final_state
            self._slot_handle[slot] = None
        self._free.append(slot)

    def _compact(self) -> None:
        """Drop tombstones from the heap, in place.

        In place matters: ``run`` holds a local reference to the heap list,
        and a callback may trigger compaction mid-run.
        """
        slot_seq = self._slot_seq
        self._heap[:] = [
            entry for entry in self._heap if slot_seq[entry[2]] == entry[1]
        ]
        heapq.heapify(self._heap)
        self._tombstones = 0
        self.compactions += 1

    def _seq_of(self, slot: int) -> int:
        """Sequence number currently occupying ``slot`` (for timer helpers)."""
        return self._slot_seq[slot]

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self.now}"
            )
        if not callable(callback):
            raise SimulationError(f"callback {callback!r} is not callable")
        time = float(time)
        seq = self._seq  # _alloc consumes exactly this sequence number
        slot = self._alloc(time, callback, args)
        handle = EventHandle(self, slot, time, seq, callback, args)
        self._slot_handle[slot] = handle
        return handle

    def call_in(self, delay: float, callback: Callable[..., None], args: tuple = ()) -> int:
        """Raw hot-path scheduling: no handle, no ``*args`` repacking.

        Returns the slot index; fire-and-forget callers ignore it, and timer
        helpers pair it with the slot's sequence number for safe cancellation
        (see :class:`repro.sim.timers.OneShotTimer`).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        # _alloc inlined: this is the hottest scheduling entry point (every
        # MAC timer, ACK and end-of-flight event goes through here).
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            slot = free.pop()
            self._slot_seq[slot] = seq
            self._slot_cb[slot] = callback
            self._slot_args[slot] = args
        else:
            slot = len(self._slot_seq)
            self._slot_seq.append(seq)
            self._slot_cb.append(callback)
            self._slot_args.append(args)
            self._slot_handle.append(None)
        heapq.heappush(self._heap, (self.now + delay, seq, slot))
        return slot

    def call_at(self, time: float, callback: Callable[..., None], args: tuple = ()) -> int:
        """Absolute-time variant of :meth:`call_in`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event at t={time} before current time t={self.now}"
            )
        return self._alloc(float(time), callback, args)

    def schedule_many(self, calls, *, absolute: bool = False) -> int:
        """Batch-schedule ``(when, callback, args)`` triples; returns the count.

        ``when`` is a delay from now, or an absolute simulation time with
        ``absolute=True`` (use absolute times when the batch must tie-break
        identically with ``schedule_at`` callers -- converting through a
        delay would reintroduce float rounding).  Equivalent to ``call_in`` /
        ``call_at`` per triple (same sequence numbering, so the same
        tie-break order), but when the calendar is empty the batch is
        heapified in one pass instead of pushed entry by entry.
        """
        heap = self._heap
        bulk = not heap
        now = self.now
        count = 0
        try:
            for when, callback, args in calls:
                if absolute:
                    if when < now:
                        raise SimulationError(
                            f"cannot schedule an event at t={when} before current time t={now}"
                        )
                    time = float(when)
                else:
                    if when < 0:
                        raise SimulationError(
                            f"cannot schedule an event in the past (delay={when})"
                        )
                    time = now + when
                if bulk:
                    seq = self._seq
                    self._seq = seq + 1
                    slot = len(self._slot_seq)
                    self._slot_seq.append(seq)
                    self._slot_cb.append(callback)
                    self._slot_args.append(args)
                    self._slot_handle.append(None)
                    heap.append((time, seq, slot))
                else:
                    self._alloc(time, callback, args)
                count += 1
        finally:
            if bulk:
                heapq.heapify(heap)
        return count

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would advance past this time.  Events at
            exactly ``until`` are executed.  When omitted the simulation runs
            until the event queue drains.
        max_events:
            Optional safety valve limiting the number of callbacks executed
            in this call.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        if until is not None:
            until = float(until)
        executed = 0
        heap = self._heap
        slot_seq = self._slot_seq
        slot_cb = self._slot_cb
        slot_args = self._slot_args
        slot_handle = self._slot_handle
        free = self._free
        pop = heapq.heappop
        try:
            while heap:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                entry = pop(heap)
                time, seq, slot = entry
                if slot_seq[slot] != seq:
                    # Tombstone left behind by a lazy cancellation.
                    self._tombstones -= 1
                    continue
                if until is not None and time > until:
                    # Beyond the horizon: put the event back and stop.
                    heapq.heappush(heap, entry)
                    self.now = until
                    break
                self.now = time
                callback = slot_cb[slot]
                args = slot_args[slot]
                # Release the slot before running the callback so whatever
                # the callback schedules can reuse it immediately.
                handle = slot_handle[slot]
                if handle is not None:
                    handle._state = _FIRED
                    slot_handle[slot] = None
                slot_seq[slot] = -1
                slot_cb[slot] = None
                slot_args[slot] = None
                free.append(slot)
                callback(*args)
                self._events_processed += 1
                executed += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the running simulation after the current event completes."""
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched).

        Outstanding :class:`EventHandle` objects are detached as cancelled.
        """
        slot_seq = self._slot_seq
        for _, seq, slot in self._heap:
            if slot_seq[slot] == seq:
                self._release(slot, _CANCELLED)
        del self._heap[:]
        self._tombstones = 0

"""Discrete-event simulation engine.

This package replaces the GloMoSim/PARSEC substrate used by the paper with a
pure-Python, sequential, deterministic discrete-event engine:

* :class:`repro.sim.engine.Simulator` -- the event calendar and clock.
* :class:`repro.sim.engine.EventHandle` -- cancellable handle returned by
  ``schedule``.
* :class:`repro.sim.timers.PeriodicTimer` -- repeating timers (hello beacons,
  gossip rounds, group hellos, ...).
* :class:`repro.sim.timers.OneShotTimer` -- a re-armable one-shot slot over
  the pooled calendar (MAC backoff/ACK timers).
* :class:`repro.sim.random.RandomStreams` -- named, independently seeded
  random streams so every stochastic protocol decision is reproducible.

The engine is sequential rather than parallel (as PARSEC is); protocol
behaviour depends only on event order and timestamps, which are identical, so
this substitution does not change any result shape (see DESIGN.md).
"""

from repro.sim.engine import EventHandle, Simulator, SimulationError
from repro.sim.random import RandomStreams
from repro.sim.timers import OneShotTimer, PeriodicTimer

__all__ = [
    "EventHandle",
    "OneShotTimer",
    "PeriodicTimer",
    "RandomStreams",
    "SimulationError",
    "Simulator",
]

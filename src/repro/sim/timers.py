"""Timer helpers built on top of the event calendar.

Both helpers are *reusable slots* over the engine's pooled calendar: arming
schedules a raw pool event (no :class:`~repro.sim.engine.EventHandle`
allocation), and the ``(slot, seq)`` pair they retain makes disarming safe
even after the event fired and its slot was recycled -- a stale sequence
number turns the cancel into a no-op, exactly like cancelling a fired
handle.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator


class OneShotTimer:
    """A re-armable one-shot timer occupying a single logical slot.

    Used by the MAC (backoff / transmission-done / ACK-timeout share one
    pending event) and by :class:`PeriodicTimer`; arming allocates nothing
    beyond the engine's pooled event.  Re-arming cancels any still-pending
    shot first.
    """

    __slots__ = ("_sim", "_slot", "_seq")

    def __init__(self, sim: Simulator):
        self._sim = sim
        self._slot = -1
        self._seq = -1

    def arm(self, delay: float, callback: Callable[..., None], args: tuple = ()) -> None:
        """Fire ``callback(*args)`` after ``delay`` seconds (replacing any
        still-pending shot)."""
        sim = self._sim
        slot = self._slot
        if slot >= 0 and sim._slot_seq[slot] == self._seq:
            sim._cancel_slot(slot, self._seq)
        self._slot = sim.call_in(delay, callback, args)
        # The engine hands out sequence numbers monotonically and call_in
        # consumed exactly one, so the shot's seq is the last one issued.
        self._seq = sim._seq - 1

    def disarm(self) -> None:
        """Cancel the pending shot; a no-op when it already fired."""
        if self._slot >= 0:
            self._sim._cancel_slot(self._slot, self._seq)
            self._slot = -1

    @property
    def armed(self) -> bool:
        """True while a shot is scheduled and has not fired."""
        return self._slot >= 0 and self._sim._seq_of(self._slot) == self._seq


class PeriodicTimer:
    """A repeating timer.

    The callback runs every ``interval`` seconds starting after an optional
    initial ``delay``.  Optional per-tick ``jitter`` (drawn uniformly from
    ``[-jitter, +jitter]``) desynchronises periodic protocol traffic, which is
    how real MANET implementations avoid beacon synchronisation.

    The timer is created stopped; call :meth:`start`.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        *,
        delay: float = 0.0,
        jitter: float = 0.0,
        rng=None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._delay = float(delay)
        self._jitter = float(jitter)
        self._rng = rng
        self._shot = OneShotTimer(sim)
        self._running = False
        self.ticks = 0

    @property
    def running(self) -> bool:
        """True while the timer is armed."""
        return self._running

    @property
    def interval(self) -> float:
        """Current firing interval in seconds."""
        return self._interval

    def start(self) -> None:
        """Arm the timer.  Starting an already running timer is a no-op."""
        if self._running:
            return
        self._running = True
        self._schedule_next(self._delay + self._next_jitter())

    def stop(self) -> None:
        """Disarm the timer."""
        self._running = False
        self._shot.disarm()

    def restart(self, interval: Optional[float] = None) -> None:
        """Stop and start again, optionally changing the interval."""
        self.stop()
        if interval is not None:
            if interval <= 0:
                raise ValueError(f"interval must be positive, got {interval}")
            self._interval = float(interval)
        self.start()

    def _next_jitter(self) -> float:
        if self._jitter == 0:
            return 0.0
        return self._rng.uniform(-self._jitter, self._jitter)

    def _schedule_next(self, delay: float) -> None:
        self._shot.arm(delay if delay > 0.0 else 0.0, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self._callback()
        if self._running:
            self._schedule_next(self._interval + self._next_jitter())

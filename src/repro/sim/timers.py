"""Timer helpers built on top of the event calendar."""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventHandle, Simulator


class PeriodicTimer:
    """A repeating timer.

    The callback runs every ``interval`` seconds starting after an optional
    initial ``delay``.  Optional per-tick ``jitter`` (drawn uniformly from
    ``[-jitter, +jitter]``) desynchronises periodic protocol traffic, which is
    how real MANET implementations avoid beacon synchronisation.

    The timer is created stopped; call :meth:`start`.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        *,
        delay: float = 0.0,
        jitter: float = 0.0,
        rng=None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if jitter < 0:
            raise ValueError(f"jitter must be non-negative, got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._delay = float(delay)
        self._jitter = float(jitter)
        self._rng = rng
        self._handle: Optional[EventHandle] = None
        self._running = False
        self.ticks = 0

    @property
    def running(self) -> bool:
        """True while the timer is armed."""
        return self._running

    @property
    def interval(self) -> float:
        """Current firing interval in seconds."""
        return self._interval

    def start(self) -> None:
        """Arm the timer.  Starting an already running timer is a no-op."""
        if self._running:
            return
        self._running = True
        self._schedule_next(self._delay + self._next_jitter())

    def stop(self) -> None:
        """Disarm the timer."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def restart(self, interval: Optional[float] = None) -> None:
        """Stop and start again, optionally changing the interval."""
        self.stop()
        if interval is not None:
            if interval <= 0:
                raise ValueError(f"interval must be positive, got {interval}")
            self._interval = float(interval)
        self.start()

    def _next_jitter(self) -> float:
        if self._jitter == 0:
            return 0.0
        return self._rng.uniform(-self._jitter, self._jitter)

    def _schedule_next(self, delay: float) -> None:
        self._handle = self._sim.schedule(max(0.0, delay), self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self.ticks += 1
        self._callback()
        if self._running:
            self._schedule_next(self._interval + self._next_jitter())

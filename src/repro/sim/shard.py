"""The region-sharded conservative engine.

One paper-scale run has always meant one event calendar and one spatial
index; past a few thousand nodes that single heap is the structural wall.
This module partitions the (torus) area into ``shards`` rectangular regions
and gives each region its own event heap, with a conservative
synchronisation window derived from the fleet's motion envelope
(``interference range / fleet speed bound`` -- the lookahead the
displacement-epoch motion service already guarantees).

Three execution modes, one configuration surface
(``ScenarioConfig(shards=..., shard_mode=...)``):

``"sequential"`` -- the correctness reference
    :class:`ShardedSimulator` keeps one shared slot pool and one global
    sequence counter but one heap per shard, and its run loop executes the
    globally minimal ``(time, seq)`` event across all shard heads.  The
    total event order is therefore *identical to the single-heap engine by
    construction*, for any shard count -- proven shard-count invariant on
    the hot-path golden digests the same way grid-vs-naive and
    batch-vs-object are proven.  The medium routes every delivery into the
    receiving radio's home-shard heap, so per-shard event counts measure the
    real partition balance while results stay bit-exact.

``"windowed"`` -- the deterministic parallel reference, in-process
    One full scenario build per shard (identical seeded draws everywhere),
    with radios outside the shard's region disabled: a disabled radio is
    invisible to the channel, which is exactly the foreign-node semantics.
    Workers advance in lockstep over conservative sync windows; cross-shard
    transmissions travel as exported channel records (one per transmission
    start, frozen-geometry contract) redistributed at every boundary and
    re-enacted by the receiving workers (see
    ``Medium.apply_foreign_records``).  Deterministic -- identical schedule,
    identical sorted mailboxes -- but *not* bit-equal to sequential mode:
    boundary frames are seen one window late.  That skew is the documented
    price of parallelism; the sync window bounds it.

``"process"`` -- the same windowed schedule, one OS process per shard
    Reuses the campaign executor's worker conventions (top-level entry
    point, pickled configs, the default multiprocessing start method) with
    persistent lockstep workers over pipes.  Bit-identical to ``"windowed"``
    by construction -- same windows, same sorted mailboxes -- which is what
    makes the in-process mode the cheap correctness reference for the
    multi-core mode.

Parallel modes require the batch fan-out kernel and do not support churn
(membership control would need its own cross-worker protocol); the
sequential mode supports everything.  The observability layer *is*
supported in every mode: each parallel worker instruments its own shard and
the per-worker telemetry is merged into one run-wide snapshot -- the
windowed driver merges the live obs objects in-process, the process driver
ships per-worker snapshot dicts back over the result pipe and folds them
with :func:`repro.obs.merge.merge_snapshots`.  The two paths are proven
equal by the windowed ≡ process suite, which is exactly the object-merge ≡
snapshot-merge law.
"""

from __future__ import annotations

import heapq
import itertools
import math
import multiprocessing
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Simulator, SimulationError, _CANCELLED, _FIRED

#: Sync-window clamp (seconds).  The derived window is a tenth of the time a
#: worst-case mover needs to cross the interference range -- fine-grained
#: enough that boundary skew stays well under the geometry's own staleness
#: budget -- clamped so static fleets do not degenerate to one giant window
#: and frantic fleets do not drown in synchronisation rounds.
_MIN_WINDOW_S = 5e-3
_MAX_WINDOW_S = 0.5

#: Per-worker packet-uid stride (process mode).  Each worker mints packet
#: uids from its own disjoint range so MAC duplicate-detection keys
#: ``(sender, uid)`` can never collide across shards when frames are
#: forwarded over a boundary.  The in-process windowed mode shares one
#: counter and is collision-free without offsets.
_UID_STRIDE = 1 << 40


# --------------------------------------------------------------------- plan
@dataclass(frozen=True)
class ShardPlan:
    """The partition of the area into ``rows x cols`` rectangular regions.

    Regions are half-open cells ``[col*cell_w, (col+1)*cell_w) x [row*cell_h,
    (row+1)*cell_h)``; positions on the far edges (or marginally outside, as
    float wrap-around can produce) clamp into the last row/column, so every
    coordinate maps to exactly one shard on flat and torus areas alike.
    """

    shards: int
    rows: int
    cols: int
    width_m: float
    height_m: float

    @classmethod
    def build(cls, shards: int, width_m: float, height_m: float) -> "ShardPlan":
        """A near-square factorisation, long axis along the wider dimension."""
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if width_m <= 0 or height_m <= 0:
            raise ValueError("area dimensions must be positive")
        rows = int(math.sqrt(shards))
        while shards % rows:
            rows -= 1
        cols = shards // rows
        if width_m < height_m:
            rows, cols = cols, rows
        return cls(shards=shards, rows=rows, cols=cols,
                   width_m=width_m, height_m=height_m)

    @property
    def cell_width_m(self) -> float:
        return self.width_m / self.cols

    @property
    def cell_height_m(self) -> float:
        return self.height_m / self.rows

    def shard_of(self, x: float, y: float) -> int:
        """The shard whose region contains ``(x, y)`` (edges clamp inward)."""
        col = int(x * self.cols / self.width_m)
        if col >= self.cols:
            col = self.cols - 1
        elif col < 0:
            col = 0
        row = int(y * self.rows / self.height_m)
        if row >= self.rows:
            row = self.rows - 1
        elif row < 0:
            row = 0
        return row * self.cols + col

    def region_bounds(self, shard: int) -> Tuple[float, float, float, float]:
        """``(x0, y0, x1, y1)`` of one shard's region."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} outside [0, {self.shards})")
        row, col = divmod(shard, self.cols)
        cw = self.cell_width_m
        ch = self.cell_height_m
        return (col * cw, row * ch, (col + 1) * cw, (row + 1) * ch)

    @staticmethod
    def _axis_distance(v: float, lo: float, hi: float, wrap: float, torus: bool) -> float:
        """Distance from coordinate ``v`` to the interval ``[lo, hi]``.

        On a torus the minimum-image convention applies: the nearest of the
        three periodic images of ``v`` decides (regions never span more than
        one period, so adjacent images suffice).
        """
        if torus:
            best = math.inf
            for image in (v - wrap, v, v + wrap):
                if image < lo:
                    d = lo - image
                elif image > hi:
                    d = image - hi
                else:
                    return 0.0
                if d < best:
                    best = d
            return best
        if v < lo:
            return lo - v
        if v > hi:
            return v - hi
        return 0.0

    def region_distance(self, shard: int, x: float, y: float, torus: bool = False) -> float:
        """Distance from ``(x, y)`` to ``shard``'s region (0 inside it).

        The *halo set* of a region is exactly the points whose region
        distance is at most the carrier-sense range: every radio there can
        interfere with (or be sensed by) a radio inside the region, and no
        radio outside the halo can.  With ``torus=True`` both axes use the
        minimum-image convention, so halos wrap around the seams.
        """
        x0, y0, x1, y1 = self.region_bounds(shard)
        dx = self._axis_distance(x, x0, x1, self.width_m, torus)
        dy = self._axis_distance(y, y0, y1, self.height_m, torus)
        if dx == 0.0:
            return dy
        if dy == 0.0:
            return dx
        return math.hypot(dx, dy)

    def shards_within(
        self, x: float, y: float, radius: float, torus: bool = False
    ) -> Tuple[int, ...]:
        """Every shard whose region the disc ``(x, y, radius)`` intersects.

        The neighbor set of a transmission: a radio inside shard ``s`` can
        only observe a transmission from ``(x, y)`` when ``s`` is in this
        tuple (with ``radius`` = the carrier-sense range plus any motion
        slack).  Soundness -- every point within ``radius`` of a region is
        routed to it -- is what the interest-filtered boundary exchange and
        the halo-filtered spatial indexes rely on; the Hypothesis geometry
        suite pins it over area x shard count x range, flat and torus.
        """
        return tuple(
            shard
            for shard in range(self.shards)
            if self.region_distance(shard, x, y, torus) <= radius
        )

    @staticmethod
    def sync_window(
        cs_range_m: float,
        speed_bound_mps: Optional[float],
        override: Optional[float] = None,
    ) -> float:
        """The conservative sync window: ``0.1 * range / speed``, clamped.

        A worst-case mover crosses a tenth of the interference range per
        window, so the geometry a boundary frame was exported under is still
        current (well within the motion service's drift budget) when the
        neighbouring shard applies it.  Static fleets (speed bound zero or
        unknown) get the maximum window -- nothing moves, so only event
        latency, not geometry, bounds it.
        """
        if override is not None:
            if override <= 0:
                raise ValueError("shard sync window must be positive")
            return override
        if not speed_bound_mps or speed_bound_mps <= 0:
            return _MAX_WINDOW_S
        derived = 0.1 * cs_range_m / speed_bound_mps
        return min(max(derived, _MIN_WINDOW_S), _MAX_WINDOW_S)


# ------------------------------------------------------- sequential engine
class ShardedSimulator(Simulator):
    """The sequential multi-shard scheduler: per-shard heaps, exact order.

    One shared slot pool, free list and global sequence counter; ``shards``
    binary heaps.  Every scheduling call lands in the *current shard*'s heap
    (:meth:`set_shard` routes it -- the medium points it at the receiving
    radio's home shard around each delivery callback), and the run loop pops
    the globally minimal ``(time, seq)`` entry across all shard heads.

    Because the sequence counter is global and every live event sits in
    exactly one heap, the execution order equals the single-heap engine's
    for any shard count -- sharding changes *where* an event waits, never
    *when* it fires.  This is the invariant the hot-path golden digests pin.

    The head scan costs O(shards) comparisons per event, so this mode is a
    correctness reference and a load-balance probe (``shard_events``), not
    the speedup path -- that is what the parallel modes are for.
    """

    is_sharded = True

    def __init__(self, shards: int, start_time: float = 0.0):
        if shards < 1:
            raise ValueError("shards must be at least 1")
        super().__init__(start_time)
        #: Per-shard heaps; ``self._heap`` aliases the current shard's so
        #: every inherited scheduling path pushes into the right region.
        self._heaps: List[list] = [self._heap] + [[] for _ in range(shards - 1)]
        self.shards = shards
        #: Shard whose heap receives new events (see :meth:`set_shard`).
        self.current_shard = 0
        #: Callbacks executed per shard (partition-balance diagnostic).
        self.shard_events = [0] * shards

    def set_shard(self, shard: int) -> None:
        """Route subsequent scheduling calls into ``shard``'s heap."""
        self.current_shard = shard
        self._heap = self._heaps[shard]

    # ------------------------------------------------------- introspection
    @property
    def pending_events(self) -> int:
        return self.heap_size - self._tombstones

    @property
    def heap_size(self) -> int:
        return sum(len(heap) for heap in self._heaps)

    def heap_sizes(self) -> List[int]:
        """Raw per-shard heap lengths (tombstones included)."""
        return [len(heap) for heap in self._heaps]

    def shard_tombstones(self) -> List[int]:
        """Per-shard tombstone counts (an O(heap) scan; sampler-rate use)."""
        slot_seq = self._slot_seq
        return [
            sum(1 for entry in heap if slot_seq[entry[2]] != entry[1])
            for heap in self._heaps
        ]

    # ----------------------------------------------------------- internals
    def _compact(self) -> None:
        """Drop tombstones from every shard heap, in place."""
        slot_seq = self._slot_seq
        for heap in self._heaps:
            heap[:] = [entry for entry in heap if slot_seq[entry[2]] == entry[1]]
            heapq.heapify(heap)
        self._tombstones = 0
        self.compactions += 1

    def clear(self) -> None:
        slot_seq = self._slot_seq
        for heap in self._heaps:
            for _, seq, slot in heap:
                if slot_seq[slot] == seq:
                    self._release(slot, _CANCELLED)
            del heap[:]
        self._tombstones = 0

    # ------------------------------------------------------------------ run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run the simulation in global ``(time, seq)`` order across shards.

        The loop clears tombstones off every shard head, then executes the
        minimal live head.  Each head peek is O(1) and the scan is
        O(shards); correctness needs only that every live event is in
        exactly one heap and sequence numbers are globally unique.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        if until is not None:
            until = float(until)
        executed = 0
        heaps = self._heaps
        slot_seq = self._slot_seq
        slot_cb = self._slot_cb
        slot_args = self._slot_args
        slot_handle = self._slot_handle
        free = self._free
        pop = heapq.heappop
        shard_events = self.shard_events
        try:
            while True:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                best = None
                best_shard = -1
                for shard, heap in enumerate(heaps):
                    while heap and slot_seq[heap[0][2]] != heap[0][1]:
                        pop(heap)
                        self._tombstones -= 1
                    if heap:
                        head = heap[0]
                        if best is None or head < best:
                            best = head
                            best_shard = shard
                if best is None:
                    # Every heap drained.
                    if until is not None and until > self.now:
                        self.now = until
                    break
                time, seq, slot = best
                if until is not None and time > until:
                    # Beyond the horizon; heads were only peeked, so the
                    # calendar is already intact.
                    self.now = until
                    break
                pop(heaps[best_shard])
                self.now = time
                self.current_shard = best_shard
                self._heap = heaps[best_shard]
                callback = slot_cb[slot]
                args = slot_args[slot]
                handle = slot_handle[slot]
                if handle is not None:
                    handle._state = _FIRED
                    slot_handle[slot] = None
                slot_seq[slot] = -1
                slot_cb[slot] = None
                slot_args[slot] = None
                free.append(slot)
                callback(*args)
                self._events_processed += 1
                shard_events[best_shard] += 1
                executed += 1
        finally:
            self._running = False


# --------------------------------------------------------- parallel workers
def _radio_envelope(config):
    """The radio/motion envelope the sync window and interest filter use."""
    from repro.mobility.config import fleet_speed_bound
    from repro.net.config import RadioConfig

    return RadioConfig(
        transmission_range_m=config.transmission_range_m,
        bitrate_bps=config.bitrate_bps,
        area_topology=config.area_topology,
        area_width_m=config.area_width_m,
        area_height_m=config.area_height_m,
        speed_bound_mps=fleet_speed_bound(config.mobility_config, config.max_speed_mps),
    )


def _resolve_sync_window(config) -> float:
    """The run's sync window from its radio/motion envelope (or override)."""
    radio = _radio_envelope(config)
    return ShardPlan.sync_window(
        radio.carrier_sense_range_m,
        radio.speed_bound_mps,
        override=config.shard_window_s,
    )


@dataclass(frozen=True)
class _Interest:
    """The interest filter's inputs: geometry plus the motion envelope.

    A "tx" record is shipped to worker ``j`` only when the sender's
    interference disc -- carrier-sense range plus per-record motion slack
    ``speed_bound * airtime``, covering radios that power up and attach
    while the foreign frame is still in flight -- intersects a region
    worker ``j``'s radios currently occupy.  "down" records carry no
    geometry and are broadcast: applying one with no matching in-flight
    batch is a provable no-op, and a crash must reach any shard still
    holding one of the sender's earlier frames.
    """

    plan: ShardPlan
    torus: bool
    cs_range_m: float
    speed_bound_mps: float


def _validate_parallel(config) -> None:
    if config.fanout_kernel != "batch":
        raise ValueError(
            "parallel shard modes require fanout_kernel='batch' "
            "(cross-shard attach is a batch-kernel operation)"
        )
    if config.churn_enabled:
        raise ValueError(
            "parallel shard modes do not support churn "
            "(membership control would need its own cross-worker protocol); "
            "use shard_mode='sequential'"
        )


def _boundaries(duration_s: float, window_s: float) -> List[float]:
    """The lockstep sync boundaries: multiples of the window, then the end.

    Computed as ``i * window`` (not accumulated) so every worker and both
    parallel modes agree bit-exactly on each boundary.
    """
    bounds: List[float] = []
    step = 1
    t = window_s
    while t < duration_s:
        bounds.append(t)
        step += 1
        t = step * window_s
    bounds.append(duration_s)
    return bounds


def _record_sort_key(item):
    record, _origin = item
    # (time, node id, tag): a node's crash sorts after the transmissions it
    # started at the same instant, matching local execution order.
    return (record[1], record[2], 0 if record[0] == "tx" else 1)


def _route(
    outs: List[list],
    shards: int,
    interest: Optional[_Interest] = None,
    occupancies: Optional[List[Tuple[int, ...]]] = None,
) -> Tuple[List[list], int, int, int]:
    """Redistribute one window's records; returns ``(inboxes, exchanged,
    shipped, filtered)``.

    Every record enters one globally sorted order first; each worker's
    inbox is then a *subsequence* of that order (interest-filtered or, with
    ``interest=None``, simply everyone-but-the-origin), so all workers
    apply their records in the same relative order -- the determinism
    contract ``Medium.apply_foreign_records`` documents.  ``exchanged``
    counts drained records once each; ``shipped``/``filtered`` count
    per-destination copies delivered/suppressed (all-to-all ships
    ``exchanged * (shards - 1)`` copies, filtered modes fewer).
    """
    tagged = [
        (record, origin) for origin, out in enumerate(outs) for record in out
    ]
    tagged.sort(key=_record_sort_key)
    if interest is None:
        inboxes = [
            [record for record, origin in tagged if origin != j]
            for j in range(shards)
        ]
        return inboxes, len(tagged), len(tagged) * (shards - 1), 0
    plan = interest.plan
    torus = interest.torus
    cs_range = interest.cs_range_m
    speed = interest.speed_bound_mps
    occupied = [frozenset(occupancy) for occupancy in occupancies]
    inboxes = [[] for _ in range(shards)]
    shipped = 0
    for record, origin in tagged:
        if record[0] == "tx":
            # record = ("tx", start, sender, end_time, sx, sy, frame); the
            # slack covers receiver drift between this boundary and the
            # frame's end of flight (start falls in the window just closed,
            # so end - start bounds any attach-time displacement).
            radius = cs_range + speed * (record[3] - record[1])
            neighbors = plan.shards_within(record[4], record[5], radius, torus)
            for j in range(shards):
                if j == origin:
                    continue
                regions = occupied[j]
                if any(shard in regions for shard in neighbors):
                    inboxes[j].append(record)
                    shipped += 1
        else:
            for j in range(shards):
                if j != origin:
                    inboxes[j].append(record)
                    shipped += 1
    return inboxes, len(tagged), shipped, len(tagged) * (shards - 1) - shipped


class _ShardWorker:
    """One shard's full scenario: owned nodes live, foreign radios dark.

    Builds the *entire* scenario with the run's seed -- every global random
    stream draws in the exact order the unsharded build draws it -- then
    disables every radio whose home region belongs to another shard and
    starts only the owned protocol stacks.  Used verbatim by both parallel
    modes (in one process, or one per process), which is what makes them
    bit-identical.
    """

    def __init__(self, config, role: int, failure_events=None):
        from repro.workload.failures import FailureSchedule
        from repro.workload.scenario import Scenario

        setup_started = time.perf_counter()
        obs_config = config.obs_config
        if obs_config.enabled and obs_config.dump_on_error_path:
            # Every worker dumps its own ring: a `.shard<k>` suffix keeps
            # concurrent crash dumps from overwriting each other (process
            # mode) or each other's evidence (windowed mode).
            config = replace(
                config,
                obs_config=replace(
                    obs_config,
                    dump_on_error_path=f"{obs_config.dump_on_error_path}.shard{role}",
                ),
            )
        scenario = Scenario(config, shard_role=role)
        scenario.build()
        self.scenario = scenario
        self.sim = scenario.sim
        self.medium = scenario.medium
        self.role = role
        obs = scenario.obs
        self._obs_on = obs.enabled
        # Sync-protocol probes: record/window counts are deterministic (both
        # drivers apply identical sorted mailboxes); only the stall gauge --
        # wall-clock time spent outside step(), i.e. waiting on the other
        # shards at a boundary -- is timing-dependent.
        self._c_windows = obs.counter("shard.sync.windows")
        self._c_inbox = obs.counter("shard.sync.inbox_records")
        self._c_outbox = obs.counter("shard.sync.outbox_records")
        self._g_stall = obs.gauge("shard.sync.stall_ms")
        self._span_window = obs.span("shard.window")
        self._last_step_end: Optional[float] = None
        self.medium.enable_export()
        scenario.start_stacks()
        if failure_events:
            owned_events = [
                event
                for event in failure_events
                if scenario.nodes[event.node_id].phy.shard == role
            ]
            if owned_events:
                FailureSchedule(self.sim, scenario.nodes, owned_events).start()
        #: Owned radios, for the per-boundary occupancy advertisement; a
        #: crashed radio still occupies a region (it may recover mid-window
        #: and attach to an in-flight foreign frame), so *every* owned node
        #: is tracked, enabled or not.
        self._owned_nodes = [
            node for node in scenario.nodes if node.phy.shard == role
        ]
        #: Foreign radios the shard-local index admitted: the region's halo
        #: (within carrier-sense range of the region at t=0).  Deterministic
        #: -- a pure function of the seed and the plan -- so it merges
        #: identically under both parallel drivers.
        self.halo_size = sum(
            1
            for _, _, phy in self.medium.spatial_index.members()
            if phy.shard != role
        )
        self.setup_s = time.perf_counter() - setup_started
        if self._obs_on:
            obs.gauge("shard.halo.size").set(self.halo_size)
            # The obs facade is created inside build(), so the setup phase
            # cannot bracket itself with start()/stop(); add() records the
            # externally-timed interval.
            obs.span("shard.setup").add(self.setup_s)

    def occupancy(self) -> Tuple[int, ...]:
        """The regions this worker's radios occupy right now, plus its own.

        The interest filter's receiver side: a foreign record can only
        matter here when its interference disc reaches one of these
        regions.  Computed at a sync boundary -- the exact simulated time
        the next window's records are applied at -- so the advertisement is
        as fresh as the geometry it guards; the per-record motion slack in
        :func:`_route` covers drift after that instant.
        """
        plan = self.scenario.shard_plan
        now = self.sim.now
        regions = {self.role}
        for node in self._owned_nodes:
            regions.add(plan.shard_of(*node.phy.position(now)))
        return tuple(sorted(regions))

    def step(self, inbox: list, until: float) -> Tuple[list, Tuple[int, ...]]:
        """Apply one window's foreign records, run to the boundary, export.

        Returns ``(outbox, occupancy)``: the window's channel records and
        the occupancy advertisement the driver routes the *next* window's
        records with.
        """
        if self._obs_on:
            if self._last_step_end is not None:
                self._g_stall.set((time.perf_counter() - self._last_step_end) * 1e3)
            self._c_windows.inc()
            if inbox:
                self._c_inbox.inc(len(inbox))
        try:
            if inbox:
                self.medium.apply_foreign_records(inbox)
            with self._span_window:
                self.sim.run(until=until)
        except BaseException:
            dump_path = self.scenario.config.obs_config.dump_on_error_path
            if self._obs_on and dump_path:
                self.scenario.obs.dump_recorder(dump_path)
            raise
        out = self.medium.drain_export()
        if self._obs_on:
            if out:
                self._c_outbox.inc(len(out))
            self._last_step_end = time.perf_counter()
        return out, self.occupancy()

    def finish(self) -> Dict[str, object]:
        """The shard's mergeable result payload (picklable)."""
        import resource

        from repro.net.spatial import region_census

        scenario = self.scenario
        plan = scenario.shard_plan
        census = region_census(
            self.medium.spatial_index, plan.shard_of, self.sim.now
        )
        owned = sorted(
            node.node_id
            for node in scenario.nodes
            if node.phy.shard == self.role
        )
        owned_set = set(owned)
        goodput = {
            group_index: {
                member: agents[member].stats.goodput_percent
                for member in scenario.members_by_group[group_index]
                if member in agents and member in owned_set
            }
            for group_index, agents in scenario.gossip_by_group.items()
        }
        for collector in scenario.collectors.values():
            collector.on_delivery = None
        payload = {
            "role": self.role,
            "owned": owned,
            "collectors": scenario.collectors,
            "protocol_stats": scenario._aggregate_protocol_stats(),
            "events_processed": self.sim.events_processed,
            "goodput": goodput,
            "foreign": dict(self.medium.foreign_stats),
            "census": census,
            "halo": self.halo_size,
            # Wall-clock diagnostics (never compared across modes): build +
            # stack-start time, and the peak RSS -- per worker process in
            # process mode, process-wide (shared by all workers) in windowed
            # mode.  ru_maxrss is kilobytes on Linux.
            "setup_s": self.setup_s,
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        }
        if self._obs_on:
            # Publish the shard's derived metrics, then ship the telemetry
            # as plain picklable data: the snapshot dict, the raw recorder
            # events and the *full* fan-out totals (the merged top-N is only
            # meaningful after summing across shards).
            scenario._publish_telemetry()
            payload["obs_snapshot"] = scenario.obs.snapshot()
            payload["recorder_events"] = scenario.obs.recorder.events()
            payload["fanout_totals"] = [
                [node_id, total]
                for node_id, total in self.medium.top_fanout(len(scenario.nodes))
            ]
        return payload


def _shard_worker_main(conn, config, role: int, failure_events) -> None:
    """Process-mode worker entry point (top-level: campaign conventions)."""
    import repro.net.packet as packet_module

    # Disjoint per-worker uid ranges; see _UID_STRIDE.
    packet_module._packet_uid_counter = itertools.count((role + 1) * _UID_STRIDE)
    worker = _ShardWorker(config, role, failure_events)
    while True:
        message = conn.recv()
        if message[0] == "step":
            conn.send(worker.step(message[2], message[1]))
        else:
            conn.send(worker.finish())
            break
    conn.close()


# --------------------------------------------------------- telemetry merge
def _merge_fanout(payloads, n: int) -> List[list]:
    from repro.obs import merge_top_fanout

    return merge_top_fanout(
        [payload.get("fanout_totals") or [] for payload in payloads], n
    )


def _merge_telemetry_snapshots(config, payloads) -> Dict[str, object]:
    """Process mode: fold the snapshot dicts shipped over the result pipe."""
    from repro.obs import interleave_events, merge_snapshots

    telemetry = merge_snapshots(
        [payload["obs_snapshot"] for payload in payloads],
        labels=[f"shard={payload['role']}" for payload in payloads],
    )
    telemetry["recorder_events"] = interleave_events(
        [payload["recorder_events"] for payload in payloads]
    )
    telemetry["top_fanout"] = _merge_fanout(payloads, config.obs_config.top_fanout_n)
    return telemetry


def _merge_telemetry_objects(config, workers, payloads) -> Dict[str, object]:
    """Windowed mode: fold the live per-worker obs objects in-process.

    Deliberately a different code path from the snapshot fold above:
    windowed ≡ process telemetry equality is the proof that the object-level
    ``merge()`` methods implement the same law as
    :func:`repro.obs.merge.merge_snapshots`.
    """
    from repro.obs import FlightRecorder, MetricsRegistry, SpanTracker

    registry = MetricsRegistry(reservoir_size=config.obs_config.reservoir_size)
    recorder = FlightRecorder(capacity=0)
    spans = SpanTracker()
    for worker in workers:
        obs = worker.scenario.obs
        registry.merge(obs.registry, label=f"shard={worker.role}")
        recorder.merge(obs.recorder)
        spans.merge(obs.spans)
    telemetry = registry.snapshot()
    telemetry["spans"] = spans.snapshot()
    telemetry["recorder"] = recorder.snapshot()
    telemetry["recorder_events"] = recorder.events()
    telemetry["top_fanout"] = _merge_fanout(payloads, config.obs_config.top_fanout_n)
    return telemetry


def _drive_windowed(
    config, failure_events, bounds, interest
) -> Tuple[List[dict], Tuple[int, int, int], Optional[dict]]:
    workers = [
        _ShardWorker(config, role, failure_events)
        for role in range(config.shards)
    ]
    inboxes: List[list] = [[] for _ in range(config.shards)]
    exchanged = shipped = filtered = 0
    for until in bounds:
        stepped = [
            worker.step(inboxes[index], until)
            for index, worker in enumerate(workers)
        ]
        outs = [out for out, _ in stepped]
        occupancies = [occupancy for _, occupancy in stepped]
        inboxes, count, sent, cut = _route(
            outs, config.shards, interest, occupancies
        )
        exchanged += count
        shipped += sent
        filtered += cut
    payloads = [worker.finish() for worker in workers]
    telemetry = (
        _merge_telemetry_objects(config, workers, payloads)
        if config.obs_config.enabled
        else None
    )
    return payloads, (exchanged, shipped, filtered), telemetry


def _drive_process(
    config, failure_events, bounds, interest
) -> Tuple[List[dict], Tuple[int, int, int], Optional[dict]]:
    context = multiprocessing.get_context()
    connections = []
    processes = []
    try:
        for role in range(config.shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_conn, config, role, failure_events),
                daemon=True,
            )
            process.start()
            child_conn.close()
            connections.append(parent_conn)
            processes.append(process)
        inboxes: List[list] = [[] for _ in range(config.shards)]
        exchanged = shipped = filtered = 0
        for until in bounds:
            for index, conn in enumerate(connections):
                conn.send(("step", until, inboxes[index]))
            stepped = [conn.recv() for conn in connections]
            outs = [out for out, _ in stepped]
            occupancies = [occupancy for _, occupancy in stepped]
            inboxes, count, sent, cut = _route(
                outs, config.shards, interest, occupancies
            )
            exchanged += count
            shipped += sent
            filtered += cut
        for conn in connections:
            conn.send(("finish",))
        payloads = [conn.recv() for conn in connections]
    finally:
        for conn in connections:
            conn.close()
        for process in processes:
            process.join(timeout=30)
            if process.is_alive():  # pragma: no cover - hung-worker cleanup
                process.terminate()
                process.join(timeout=5)
    payloads.sort(key=lambda payload: payload["role"])
    telemetry = (
        _merge_telemetry_snapshots(config, payloads)
        if config.obs_config.enabled
        else None
    )
    return payloads, (exchanged, shipped, filtered), telemetry


# ------------------------------------------------------------ result merge
def _merge_collectors(config, payloads) -> Dict[int, "object"]:
    from repro.metrics.collectors import DeliveryCollector, MemberDelivery

    merged = {index: DeliveryCollector() for index in range(config.group_count)}
    for payload in payloads:
        for group_index, collector in payload["collectors"].items():
            target = merged[group_index]
            target._sent |= collector._sent
            target._sent_at.update(collector._sent_at)
            for member, record in collector._members.items():
                into = target._members.setdefault(
                    member, MemberDelivery(member=member)
                )
                into.received |= record.received
                into.via_routing += record.via_routing
                into.via_gossip += record.via_gossip
    return merged


def _merge_worker_results(
    config, payloads, *, mode, window_s, rounds, exchange, telemetry=None
):
    from repro.membership.summary import combine_summaries
    from repro.workload.scenario import ScenarioResult

    collectors = _merge_collectors(config, payloads)
    group_summaries = {
        group_index: collector.summary()
        for group_index, collector in collectors.items()
    }
    summary = (
        group_summaries[0]
        if config.group_count == 1
        else combine_summaries(group_summaries)
    )
    member_counts = (
        collectors[0].counts()
        if config.group_count == 1
        else dict(summary.member_counts)
    )
    protocol_stats: Dict[str, float] = {}
    goodput_by_group: Dict[int, Dict[int, float]] = {}
    foreign: Dict[str, int] = {}
    census: Dict[int, int] = {}
    events_total = 0
    for payload in payloads:
        for name, value in payload["protocol_stats"].items():
            protocol_stats[name] = protocol_stats.get(name, 0) + value
        for group_index, values in payload["goodput"].items():
            goodput_by_group.setdefault(group_index, {}).update(values)
        for name, value in payload["foreign"].items():
            foreign[name] = foreign.get(name, 0) + value
        for region, count in payload["census"].items():
            census[region] = census.get(region, 0) + count
        events_total += payload["events_processed"]
    exchanged, shipped, filtered = exchange
    shard_stats = {
        "mode": mode,
        "shards": config.shards,
        "window_s": window_s,
        "sync_rounds": rounds,
        "records_exchanged": exchanged,
        # Interest-filter accounting (per-destination copies; all three are
        # deterministic, so they take part in the windowed ≡ process law).
        "records_shipped": shipped,
        "records_filtered": filtered,
        "events_by_shard": {
            payload["role"]: payload["events_processed"] for payload in payloads
        },
        "owned_by_shard": {
            payload["role"]: len(payload["owned"]) for payload in payloads
        },
        "halo_by_shard": {
            payload["role"]: payload["halo"] for payload in payloads
        },
        # Wall-clock fields -- excluded from every cross-mode comparison.
        "setup_s_by_shard": {
            payload["role"]: payload["setup_s"] for payload in payloads
        },
        "peak_rss_kb_by_shard": {
            payload["role"]: payload["peak_rss_kb"] for payload in payloads
        },
        "final_census": census,
        "foreign": foreign,
    }
    return ScenarioResult(
        config=config,
        summary=summary,
        member_counts=member_counts,
        goodput_by_member=goodput_by_group.get(0, {}),
        packets_sent=sum(c.packets_sent for c in collectors.values()),
        protocol_stats=protocol_stats,
        events_processed=events_total,
        group_summaries=group_summaries,
        goodput_by_group=goodput_by_group,
        membership_events=0,
        telemetry=telemetry,
        shard_stats=shard_stats,
    )


# ------------------------------------------------------------------ driver
def run_sharded(config, failure_events=None):
    """Run ``config`` under a parallel shard mode and merge the results.

    The entry point behind ``run_scenario`` for
    ``shard_mode in ("windowed", "process")``; call it directly to inject a
    failure schedule (``failure_events``: iterable of
    :class:`repro.workload.failures.FailureEvent`, applied by each node's
    owning worker).
    """
    if config.shards < 2:
        raise ValueError("run_sharded needs shards >= 2")
    if config.shard_mode not in ("windowed", "process"):
        raise ValueError(f"unknown parallel shard mode {config.shard_mode!r}")
    _validate_parallel(config)
    radio = _radio_envelope(config)
    window_s = ShardPlan.sync_window(
        radio.carrier_sense_range_m,
        radio.speed_bound_mps,
        override=config.shard_window_s,
    )
    bounds = _boundaries(config.duration_s, window_s)
    if radio.speed_bound_mps is None:
        # No motion envelope: per-record slack is unbounded, so the filter
        # falls back to the all-to-all broadcast (never reached from
        # ScenarioConfig, whose fleets always have an exact speed bound).
        interest = None
    else:
        interest = _Interest(
            plan=ShardPlan.build(
                config.shards, config.area_width_m, config.area_height_m
            ),
            torus=(config.area_topology == "torus"),
            cs_range_m=radio.carrier_sense_range_m,
            speed_bound_mps=radio.speed_bound_mps,
        )
    if config.shard_mode == "process":
        payloads, exchange, telemetry = _drive_process(
            config, failure_events, bounds, interest
        )
    else:
        payloads, exchange, telemetry = _drive_windowed(
            config, failure_events, bounds, interest
        )
    if telemetry is not None:
        # Annotated here, after both drivers, so the windowed ≡ process
        # telemetry-equality law covers the metadata too.
        telemetry["merged"] = {"shards": config.shards}
        metrics = telemetry.get("metrics")
        if metrics is not None:
            # Driver-side counters (the workers never see what was routed
            # around them); deterministic, hence inside the equality law.
            metrics["shard.sync.records_shipped"] = exchange[1]
            metrics["shard.sync.records_filtered"] = exchange[2]
    return _merge_worker_results(
        config,
        payloads,
        mode=config.shard_mode,
        window_s=window_s,
        rounds=len(bounds),
        exchange=exchange,
        telemetry=telemetry,
    )
